//! The multi-tenant session engine.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use aigs_core::{
    CompiledConfig, CompiledCursor, CompiledPlan, CoreError, SearchOutcome, SessionStep,
    SessionStepper,
};
use aigs_data::wal::{FsyncPolicy, SessionWal, WalEvent, WAL_VERSION};
use aigs_testutil::failpoints::{self, FaultAction};

use crate::durability::{
    code_is_compiled, discover_shards, durability_err, kind_from_code, plan_payload,
    plan_spec_from_payload, read_dir_logs, session_kind_code, shard_dir, sync_dir, DegradedState,
    DurabilityConfig, RecoveryReport, ReplaySession, ReplayState, WalState, ROTATED_FILE,
    SHARD_DIR_PREFIX, SNAPSHOT_FILE, SNAPSHOT_TMP_FILE,
};
use crate::plan::PlanEntry;
use crate::telemetry::{
    self, render_histogram, PredictedCost, ShardTelemetry, SlowOp, TelemetrySnapshot,
};
use crate::{PlanId, PlanSpec, PolicyKind, ServiceError};

/// Default admission limit of [`EngineConfig`].
pub const DEFAULT_MAX_SESSIONS: usize = 65_536;

/// Slack added to the idle-heap compaction threshold so tiny engines do
/// not thrash the rebuild.
const IDLE_HEAP_SLACK: usize = 64;

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Admission limit on concurrently live sessions, engine-wide (shards
    /// share one budget). Opening past it fails with
    /// [`ServiceError::AtCapacity`] unless idle eviction frees a slot.
    pub max_sessions: usize,
    /// Idle-eviction threshold on the engine's logical clock (every engine
    /// operation is one tick). A session untouched for this many ticks is
    /// evictable by [`SearchEngine::sweep_idle`] — which also runs when
    /// admission is full. `None` disables eviction: abandoned sessions
    /// then hold their slots until cancelled.
    pub idle_ticks: Option<u64>,
    /// Per-session query cap forwarded to [`SessionStepper::start`] (the
    /// `4·n + 64` safety cap always applies on top).
    pub max_queries: Option<u32>,
    /// How many warm policy instances each (plan, kind) pool retains.
    pub pool_cap: usize,
    /// How many slab shards the engine runs. Each shard owns its slots,
    /// free list, stats counters, idle heap and (with durability on) WAL
    /// tail, so sessions on different shards never contend on a shared
    /// mutator lock. `0` means auto: the `AIGS_SHARDS` environment
    /// variable if set, else [`std::thread::available_parallelism`].
    /// [`SearchEngine::recover`] ignores this and rebuilds with the shard
    /// count the log directory was written with.
    pub shards: usize,
    /// Optional write-ahead durability: with `Some`, every acknowledged
    /// mutating operation is logged before success is returned, and
    /// [`SearchEngine::recover`] rebuilds the engine after a crash.
    pub durability: Option<DurabilityConfig>,
    /// Which plans serve from the compiled tier (flat decision-tree arrays
    /// instead of live policy steps). See [`CompiledTier`].
    pub compiled: CompiledTier,
    /// Whether the [`crate::telemetry`] hooks record. `None` resolves from
    /// the `AIGS_TELEMETRY` environment variable at construction (on
    /// unless `0`); the hooks are cheap enough (two relaxed atomic adds
    /// per histogram record) that on is the default.
    pub telemetry: Option<bool>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_sessions: DEFAULT_MAX_SESSIONS,
            idle_ticks: None,
            max_queries: None,
            pool_cap: 64,
            shards: 0,
            durability: None,
            compiled: CompiledTier::Auto,
            telemetry: None,
        }
    }
}

/// Engine-wide compiled-tier policy: which plans get their decision trees
/// flattened into serving arrays ([`aigs_core::CompiledPlan`]).
///
/// Compiled sessions step through the flat array — no policy instance, no
/// pool traffic, nanosecond steps — and fall back to the live tier when
/// they cross a truncated tree's frontier. Transcripts are bit-identical
/// either way (differentially tested), so the tier is purely a
/// performance/memory trade.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompiledTier {
    /// Resolve from the `AIGS_COMPILED` environment variable at engine
    /// construction: `0` → [`Off`](Self::Off), `1` → [`All`](Self::All),
    /// unset or unparsable → [`PerPlan`](Self::PerPlan).
    #[default]
    Auto,
    /// Never compile; every session serves live (plan opt-ins ignored).
    Off,
    /// Compile exactly the plans registered with
    /// [`crate::PlanSpec::with_compiled`]. The production default.
    PerPlan,
    /// Compile every plan (with its own config, or
    /// [`CompiledConfig::default`] when it has none). Meant for test
    /// matrices that want compiled coverage across existing suites.
    All,
}

/// The config [`CompiledTier::All`] compiles non-opted-in plans with.
const DEFAULT_COMPILED: CompiledConfig = CompiledConfig {
    max_depth: None,
    min_mass: 0.0,
    max_nodes: None,
};

/// Resolves [`EngineConfig::shards`]: explicit > `AIGS_SHARDS` > core count.
fn resolve_shards(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Ok(v) = std::env::var("AIGS_SHARDS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Resolves [`EngineConfig::compiled`]: explicit > `AIGS_COMPILED` >
/// per-plan opt-in. Lenient like [`resolve_shards`] — the strict-parsing
/// test knob lives in `aigs_testutil`.
fn resolve_compiled(requested: CompiledTier) -> CompiledTier {
    if requested != CompiledTier::Auto {
        return requested;
    }
    match std::env::var("AIGS_COMPILED").as_deref().map(str::trim) {
        Ok("0") => CompiledTier::Off,
        Ok("1") => CompiledTier::All,
        _ => CompiledTier::PerPlan,
    }
}

/// The compiled tree (if any) that `tier` serves `kind` sessions of `plan`
/// with; `None` means the session serves live. Shared by `open_session`
/// and recovery so both resolve the tier identically.
fn compiled_tree_for(
    tier: CompiledTier,
    plan: &PlanEntry,
    kind: PolicyKind,
) -> Option<Arc<CompiledPlan>> {
    match tier {
        CompiledTier::Off => None,
        CompiledTier::All => plan.compiled_for(kind, Some(&DEFAULT_COMPILED)),
        CompiledTier::Auto | CompiledTier::PerPlan => plan.compiled_for(kind, None),
    }
}

/// Generational handle to one live session. Stale ids (finished, cancelled
/// or evicted sessions, even after slot reuse) are rejected with
/// [`ServiceError::UnknownSession`], never silently routed to a stranger's
/// search. Like [`crate::PlanId`], the id is scoped to the issuing engine,
/// so it cannot alias a session on a sibling engine either — and
/// [`SearchEngine::recover`] restores the engine's identity, so ids issued
/// before a crash remain valid on the recovered engine.
///
/// The id also encodes its shard: global slot index `i` lives on shard
/// `i mod K` at local slot `i div K`, so routing a session to its shard is
/// arithmetic, not a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId {
    engine: u32,
    index: u32,
    generation: u32,
}

impl SessionId {
    /// Wire decomposition: `(engine, index, generation)`.
    pub(crate) fn parts(self) -> (u32, u32, u32) {
        (self.engine, self.index, self.generation)
    }

    /// Rebuilds an id from its wire decomposition. Forged ids are safe:
    /// every operation validates engine nonce, bounds and generation.
    pub(crate) fn from_parts(engine: u32, index: u32, generation: u32) -> SessionId {
        SessionId {
            engine,
            index,
            generation,
        }
    }
}

/// A point-in-time snapshot of engine activity, aggregated across shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineStats {
    /// Currently live (suspended or mid-step) sessions.
    pub live: usize,
    /// High-water mark of `live`.
    pub peak_live: usize,
    /// Slab shards the engine is running.
    pub shards: usize,
    /// Sessions successfully opened.
    pub opened: u64,
    /// Sessions finished with an outcome.
    pub finished: u64,
    /// Sessions cancelled by their caller.
    pub cancelled: u64,
    /// Sessions evicted as idle.
    pub evicted: u64,
    /// Sessions torn down by a search error (divergence) plus opens refused
    /// by a policy construction error.
    pub errored: u64,
    /// Sessions quarantined because their policy panicked (the panicking
    /// instance is discarded, never re-pooled).
    pub panicked: u64,
    /// `next_question`/`answer` operations served.
    pub steps: u64,
    /// Session opens served by a warm pooled policy instance (the O(Δ)
    /// journal-reset path) rather than a fresh build.
    pub pool_hits: u64,
    /// Steps (`next_question` + `answer`) served from the compiled tier's
    /// flat array, with no policy involvement.
    pub compiled_hits: u64,
    /// Sessions that left the compiled tier for the live one: opened on a
    /// root-truncated tree, or crossed the truncation frontier mid-flight
    /// (the live policy is materialised by replaying the answer history).
    pub compiled_fallbacks: u64,
    /// WAL records appended over the engine's lifetime, summed across
    /// shard logs (0 with durability off).
    pub wal_records: u64,
    /// Whether the engine is in degraded (read-mostly) mode after a WAL
    /// failure on any shard.
    pub degraded: bool,
    /// The engine's logical clock when it degraded (`None` while
    /// healthy).
    pub degraded_since: Option<u64>,
    /// The WAL error that triggered degradation, verbatim (`None` while
    /// healthy).
    pub degraded_reason: Option<String>,
}

/// One shard's slice of [`EngineStats`]: the per-shard counters before
/// they are summed, so shard imbalance (skewed live counts, one shard
/// absorbing the evictions, a single hot log) is observable. Returned by
/// [`SearchEngine::stats_per_shard`] and the wire protocol's shard-stats
/// opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Which shard (0-based).
    pub shard: u32,
    /// Sessions currently live on this shard.
    pub live: u64,
    /// Sessions opened on this shard.
    pub opened: u64,
    /// Sessions finished with an outcome.
    pub finished: u64,
    /// Sessions cancelled by their caller.
    pub cancelled: u64,
    /// Sessions evicted as idle.
    pub evicted: u64,
    /// Sessions torn down by search errors.
    pub errored: u64,
    /// Sessions quarantined by policy panics.
    pub panicked: u64,
    /// `next_question`/`answer` operations served.
    pub steps: u64,
    /// Opens served by a warm pooled instance.
    pub pool_hits: u64,
    /// Steps served from the compiled tier.
    pub compiled_hits: u64,
    /// Sessions that left the compiled tier for the live one.
    pub compiled_fallbacks: u64,
    /// WAL records appended to this shard's log (0 with durability off).
    pub wal_records: u64,
}

/// The stepping state behind one live session: which serving tier it is
/// on. Both tiers produce bit-identical transcripts (differentially
/// tested); they differ only in what state they carry.
enum SessionCore {
    /// Live tier: a (usually pooled) policy instance plus the stepper
    /// driving it.
    Live {
        policy: Box<dyn aigs_core::Policy + Send>,
        stepper: SessionStepper,
    },
    /// Compiled tier: a cursor into the plan's shared flat decision-tree
    /// array. No policy state at all — the cursor is two integers and the
    /// price accumulator, and recovery rebuilds it by walking the array
    /// along the answer history.
    Compiled {
        tree: Arc<CompiledPlan>,
        cursor: CompiledCursor,
    },
}

impl SessionCore {
    fn is_compiled(&self) -> bool {
        matches!(self, SessionCore::Compiled { .. })
    }
}

/// Which tier served one step — drives the hit/fallback counters.
/// `Fallback` marks the answer that crossed a truncated tree's frontier
/// and materialised the live policy.
enum StepTier {
    Live,
    Compiled,
    Fallback,
}

impl StepTier {
    fn telemetry(&self) -> telemetry::Tier {
        match self {
            StepTier::Live => telemetry::Tier::Live,
            StepTier::Compiled => telemetry::Tier::Compiled,
            StepTier::Fallback => telemetry::Tier::Fallback,
        }
    }
}

struct LiveSession {
    plan: Arc<PlanEntry>,
    /// The plan's registration index (what WAL events reference).
    plan_index: u32,
    kind: PolicyKind,
    core: SessionCore,
    /// The acknowledged answer history — with the plan and kind, the
    /// session's complete durable state (questions re-derive
    /// deterministically on replay).
    answers: Vec<bool>,
    last_touch: u64,
}

impl LiveSession {
    /// Returns the session's policy instance to its plan's pool (compiled
    /// sessions hold none). Called on every teardown path.
    fn release_policy(self) {
        if let SessionCore::Live { policy, .. } = self.core {
            self.plan.release(self.kind, policy);
        }
    }
}

struct Slot {
    generation: u32,
    session: Option<LiveSession>,
}

/// One lazily-deduplicated idle-heap entry: `(last_touch, local slot,
/// generation)` under `Reverse`, so the root is the least-recently-touched
/// candidate. Entries are never removed on touch — the slot's current
/// `last_touch` arbitrates staleness when an entry surfaces at the root.
type IdleEntry = Reverse<(u64, u32, u32)>;

#[derive(Default)]
struct Counters {
    opened: AtomicU64,
    finished: AtomicU64,
    cancelled: AtomicU64,
    evicted: AtomicU64,
    errored: AtomicU64,
    panicked: AtomicU64,
    steps: AtomicU64,
    pool_hits: AtomicU64,
    compiled_hits: AtomicU64,
    compiled_fallbacks: AtomicU64,
}

/// One slab shard: slots, free list, idle heap, stats and WAL tail, each
/// owned exclusively so mutators on different shards share no locks. The
/// logical clock, live count and degraded flag stay engine-global: the
/// clock so idle ages are comparable across shards (a per-shard clock
/// would let sessions on a quiet shard never age), the live count so
/// `max_sessions` keeps its exact engine-wide meaning.
struct Shard {
    slots: RwLock<Vec<Arc<Mutex<Slot>>>>,
    free: Mutex<Vec<u32>>,
    /// Last-touch min-heap over this shard's live sessions (maintained
    /// only when idle eviction is configured). Lazy: every touch pushes,
    /// stale entries are discarded when popped, and the heap is compacted
    /// in place when it outgrows `2·slots + slack`. Lock order: a slot
    /// mutex may be held while taking the heap lock, never the reverse.
    idle: Mutex<BinaryHeap<IdleEntry>>,
    counters: Counters,
    /// Sessions currently live on this shard (the engine-global `live`
    /// stays the admission budget; this one exists so shard skew is
    /// observable). Incremented by slot allocation, decremented by slot
    /// release — exactly paired on every teardown path.
    live: AtomicU64,
    /// This shard's telemetry cell, shared (`Arc`) with its `WalState` and
    /// group-commit thread.
    telemetry: Arc<ShardTelemetry>,
    wal: Option<WalState>,
}

impl Shard {
    fn empty(telemetry_enabled: bool) -> Shard {
        Shard {
            slots: RwLock::new(Vec::new()),
            free: Mutex::new(Vec::new()),
            idle: Mutex::new(BinaryHeap::new()),
            counters: Counters::default(),
            live: AtomicU64::new(0),
            telemetry: Arc::new(ShardTelemetry::new(telemetry_enabled)),
            wal: None,
        }
    }
}

enum Removal {
    Cancelled,
    Errored,
}

/// A concurrent, suspendable multi-tenant search engine, sharded per core.
///
/// The engine is `Sync`: share it behind an `Arc` (or plain reference) and
/// drive different sessions from as many threads as you like. Session
/// storage is split across [`EngineConfig::shards`] shards, each owning
/// its slots, free list, counters, idle heap and WAL tail — so per-session
/// operations lock only that session's slot, admission bookkeeping on
/// different shards never contends, and (with durability on) appends to
/// different shards' logs proceed in parallel instead of serializing on
/// one writer mutex. Plan artifacts are shared engine-wide via `Arc`.
///
/// ### Lifecycle
///
/// [`open_session`](Self::open_session) →
/// ([`next_question`](SessionHandle::next_question) → *ship to oracle,
/// suspend* → [`answer`](SessionHandle::answer))\* →
/// [`finish`](SessionHandle::finish). Sessions that stop answering are
/// reclaimed by idle eviction; sessions whose search errors are torn down
/// individually, returning the [`CoreError`] to their caller only; sessions
/// whose policy *panics* are quarantined the same way (instance discarded,
/// [`ServiceError::PolicyPanicked`] to their caller, everyone else
/// untouched).
///
/// ### Durability
///
/// With [`EngineConfig::durability`] set, acknowledged mutations append to
/// a checksummed write-ahead log (one `shard-<k>/` directory per shard)
/// before returning, periodic snapshots compact each shard's log, and
/// [`recover`](Self::recover) rebuilds the engine from the logs, replaying
/// shards in parallel — recovered sessions continue with transcripts
/// **bit-identical** to an uncrashed run. If any shard's log fails (disk
/// full, I/O error), the whole engine degrades to read-mostly: the failing
/// call gets [`ServiceError::Durability`], later mutating calls get
/// [`ServiceError::Degraded`], while `next_question`,
/// [`stats`](Self::stats) and existing reads keep working. A session whose
/// *applied* answer could not be logged is torn down (never served in a
/// state the log does not acknowledge); recovery restores it at its
/// acknowledged history.
pub struct SearchEngine {
    config: EngineConfig,
    /// Process-unique nonce baked into every id this engine issues, so a
    /// [`PlanId`]/[`SessionId`] presented to a *different* engine is
    /// rejected instead of aliasing that engine's slot at the same index.
    engine_id: u32,
    plans: RwLock<Vec<Arc<PlanEntry>>>,
    shards: Vec<Shard>,
    /// Engine-wide live count (the admission budget) — exact, unlike a
    /// sum of per-shard counts sampled at different instants.
    live: AtomicUsize,
    peak_live: AtomicUsize,
    /// Engine-wide logical clock; see [`Shard`] for why it is not sharded.
    /// Shared (`Arc`) with the degraded latch so WAL failure sites can
    /// stamp their entry time.
    clock: Arc<AtomicU64>,
    /// Round-robin shard placement for new sessions.
    placement: AtomicUsize,
    /// Engine-wide degraded latch (flag + entered-at clock + triggering
    /// error), shared with every shard's [`WalState`].
    degraded: Arc<DegradedState>,
    /// Whether telemetry records (resolved once at construction); gates
    /// the hot paths' `Instant::now()` reads.
    telemetry_enabled: bool,
    /// Slow-op journal threshold in nanoseconds (`AIGS_SLOW_OP_NS`).
    slow_threshold_ns: u64,
}

/// Issues [`SearchEngine::engine_id`] nonces (process-wide, never zero).
/// [`SearchEngine::recover`] bumps it past recovered ids so later engines
/// cannot collide with a pre-crash engine's identity.
static NEXT_ENGINE_ID: AtomicU32 = AtomicU32::new(1);

impl Default for SearchEngine {
    fn default() -> Self {
        Self::new(EngineConfig::default())
    }
}

impl SearchEngine {
    /// An empty engine with the given limits.
    ///
    /// # Panics
    /// Panics when [`EngineConfig::durability`] is set and the log
    /// directory cannot be initialised; use [`try_new`](Self::try_new) to
    /// handle that fallibly.
    pub fn new(config: EngineConfig) -> Self {
        Self::try_new(config).expect("durability init failed; use SearchEngine::try_new")
    }

    /// An empty engine with the given limits, surfacing durability-setup
    /// failures as [`ServiceError::Durability`].
    ///
    /// A fresh engine **owns** its log directory: stale `shard-<k>/`
    /// subdirectories from a previous tenant are removed so a later
    /// recovery cannot splice two engines' histories. To resume from an
    /// existing log, use [`recover`](Self::recover) instead.
    pub fn try_new(mut config: EngineConfig) -> Result<Self, ServiceError> {
        let engine_id = NEXT_ENGINE_ID.fetch_add(1, Ordering::Relaxed);
        let shard_count = resolve_shards(config.shards);
        config.shards = shard_count;
        config.compiled = resolve_compiled(config.compiled);
        let telemetry_enabled = telemetry::resolve_enabled(config.telemetry);
        let clock = Arc::new(AtomicU64::new(0));
        let degraded = DegradedState::new(Arc::clone(&clock));
        let mut shards: Vec<Shard> = (0..shard_count)
            .map(|_| Shard::empty(telemetry_enabled))
            .collect();
        if let Some(d) = &config.durability {
            std::fs::create_dir_all(&d.dir).map_err(durability_err)?;
            // Wipe every stale shard directory — including those past the
            // new shard count, which no shard's own wipe would visit.
            for entry in std::fs::read_dir(&d.dir).map_err(durability_err)? {
                let entry = entry.map_err(durability_err)?;
                if entry
                    .file_name()
                    .to_str()
                    .is_some_and(|n| n.starts_with(SHARD_DIR_PREFIX))
                {
                    std::fs::remove_dir_all(entry.path()).map_err(durability_err)?;
                }
            }
            for (k, shard) in shards.iter_mut().enumerate() {
                let cfg = DurabilityConfig {
                    dir: shard_dir(&d.dir, k),
                    ..d.clone()
                };
                shard.wal = Some(WalState::create(
                    cfg,
                    engine_id,
                    k as u32,
                    shard_count as u32,
                    Arc::clone(&degraded),
                    Arc::clone(&shard.telemetry),
                    true,
                )?);
            }
            // The shard directories' own entries live in the base dir.
            sync_dir(&d.dir)?;
        }
        Ok(SearchEngine {
            config,
            engine_id,
            plans: RwLock::new(Vec::new()),
            shards,
            live: AtomicUsize::new(0),
            peak_live: AtomicUsize::new(0),
            clock,
            placement: AtomicUsize::new(0),
            degraded,
            telemetry_enabled,
            slow_threshold_ns: telemetry::resolve_slow_threshold(),
        })
    }

    /// Rebuilds an engine from the write-ahead logs in `dir` with default
    /// limits. See [`recover_with`](Self::recover_with).
    pub fn recover(dir: impl Into<PathBuf>) -> Result<(Self, RecoveryReport), ServiceError> {
        let config = EngineConfig {
            durability: Some(DurabilityConfig::new(dir)),
            ..EngineConfig::default()
        };
        Self::recover_with(config)
    }

    /// Rebuilds an engine from the write-ahead logs named by
    /// `config.durability` (required). The shard count comes from the
    /// `shard-<k>/` directory layout, overriding [`EngineConfig::shards`]
    /// — live ids bake the routing in, so it is a property of the log.
    ///
    /// Shard 0's log is folded first (it alone carries the plan payloads,
    /// rebuilt bit-identically); then every shard's sessions are restored
    /// **in parallel**, one thread per shard, each replaying its
    /// acknowledged answer histories through fresh [`SessionStepper`]s:
    /// because policies are deterministic, a recovered session's
    /// continuation transcript is **bit-identical** to the uncrashed
    /// run's. The engine's identity is restored too, so
    /// [`SessionId`]s/[`PlanId`]s issued before the crash keep working.
    ///
    /// Torn log tails (the signature of a mid-append crash) are tolerated
    /// and reported in the [`RecoveryReport`]; individually unrestorable
    /// sessions (e.g. a policy that deterministically panics mid-replay)
    /// are retired and counted rather than poisoning the engine. A log
    /// whose recorded shard placement contradicts the directory it sits in
    /// is rejected outright — replaying shard-local indices under the
    /// wrong shard would resurrect sessions at aliased ids. After a
    /// successful recovery every shard directory is compacted to a fresh
    /// snapshot + empty tail.
    pub fn recover_with(mut config: EngineConfig) -> Result<(Self, RecoveryReport), ServiceError> {
        let Some(durability) = config.durability.clone() else {
            return Err(durability_err(
                "recover_with requires EngineConfig::durability",
            ));
        };
        let shard_count = discover_shards(&durability.dir)?;
        config.shards = shard_count;
        config.compiled = resolve_compiled(config.compiled);
        let mut report = RecoveryReport {
            shards: shard_count,
            ..RecoveryReport::default()
        };

        // Phase A: fold shard 0 — the only log carrying engine identity
        // authority and the plan payloads sessions on every shard need.
        let (rs0, events0, corruptions0) = fold_shard_logs(&durability.dir, 0, shard_count)?;
        report.events += events0;
        report.corruptions.extend(corruptions0);
        let engine_id = rs0
            .engine_id
            .ok_or_else(|| durability_err("log contains no engine metadata"))?;
        // Keep later same-process engines from colliding with this identity.
        NEXT_ENGINE_ID.fetch_max(engine_id.wrapping_add(1), Ordering::Relaxed);

        // Plans must be gap-free: sessions reference them by index.
        let mut plans = Vec::with_capacity(rs0.plans.len());
        for (i, payload) in rs0.plans.iter().enumerate() {
            let Some(payload) = payload else {
                return Err(durability_err(format!(
                    "plan {i} is missing from the log (corrupt snapshot?)"
                )));
            };
            let spec = plan_spec_from_payload(payload)?;
            plans.push(Arc::new(PlanEntry::build(spec, config.pool_cap)?));
        }
        report.plans = plans.len();

        // Phase B: restore every shard's sessions in parallel — policy
        // replay dominates recovery time and shards share nothing here.
        let track_idle = config.idle_ticks.is_some();
        let max_queries = config.max_queries;
        let tier = config.compiled;
        let parts: Vec<Result<ShardParts, ServiceError>> = std::thread::scope(|scope| {
            let plans = &plans;
            let dir = &durability.dir;
            let handles: Vec<_> = (1..shard_count)
                .map(|k| {
                    scope.spawn(move || {
                        let (rs, events, corruptions) = fold_shard_logs(dir, k, shard_count)?;
                        if rs.engine_id.is_some_and(|id| id != engine_id) {
                            return Err(durability_err(format!(
                                "shard-{k} log belongs to engine {}, expected {engine_id}",
                                rs.engine_id.unwrap_or(0)
                            )));
                        }
                        Ok(restore_shard(
                            rs,
                            events,
                            corruptions,
                            plans,
                            max_queries,
                            tier,
                            track_idle,
                        ))
                    })
                })
                .collect();
            let mut parts = vec![Ok(restore_shard(
                rs0,
                0,
                Vec::new(),
                plans,
                max_queries,
                tier,
                track_idle,
            ))];
            for handle in handles {
                parts.push(handle.join().expect("shard recovery thread panicked"));
            }
            parts
        });

        let telemetry_enabled = telemetry::resolve_enabled(config.telemetry);
        let clock = Arc::new(AtomicU64::new(0));
        let degraded = DegradedState::new(Arc::clone(&clock));
        let recover_timer = telemetry_enabled.then(std::time::Instant::now);
        let mut shards = Vec::with_capacity(shard_count);
        let mut live = 0usize;
        for (k, part) in parts.into_iter().enumerate() {
            let part = part?;
            live += part.live;
            report.sessions += part.restored;
            report.sessions_failed += part.failed;
            report.events += part.events;
            report.corruptions.extend(
                part.corruptions
                    .into_iter()
                    .map(|c| format!("shard-{k}/{c}")),
            );
            report.anomalies.extend(
                part.anomalies
                    .into_iter()
                    .map(|a| format!("shard-{k}: {a}")),
            );
            let counters = Counters::default();
            counters.opened.store(part.opened, Ordering::Relaxed);
            counters.finished.store(part.finished, Ordering::Relaxed);
            counters.cancelled.store(part.cancelled, Ordering::Relaxed);
            counters.evicted.store(part.evicted, Ordering::Relaxed);
            shards.push(Shard {
                slots: RwLock::new(part.slots),
                free: Mutex::new(part.free),
                idle: Mutex::new(part.idle),
                counters,
                live: AtomicU64::new(part.live as u64),
                telemetry: Arc::new(ShardTelemetry::new(telemetry_enabled)),
                wal: None,
            });
        }

        let mut engine = SearchEngine {
            config,
            engine_id,
            plans: RwLock::new(plans),
            shards,
            live: AtomicUsize::new(live),
            peak_live: AtomicUsize::new(live),
            clock,
            placement: AtomicUsize::new(0),
            degraded: Arc::clone(&degraded),
            telemetry_enabled,
            slow_threshold_ns: telemetry::resolve_slow_threshold(),
        };

        // Re-establish durability deterministically, shard by shard:
        // snapshot the recovered state, publish it, then open a fresh tail
        // — whatever file set the crash left behind is superseded.
        for k in 0..shard_count {
            let sdir = shard_dir(&durability.dir, k);
            let tmp = sdir.join(SNAPSHOT_TMP_FILE);
            engine.write_shard_snapshot(&tmp, k)?;
            std::fs::rename(&tmp, sdir.join(SNAPSHOT_FILE)).map_err(durability_err)?;
            // The rename must be durable before the fresh tail below
            // truncates the old one: a crash persisting the truncation
            // without the rename would drop acknowledged records.
            sync_dir(&sdir)?;
            let _ = std::fs::remove_file(sdir.join(ROTATED_FILE));
            let cfg = DurabilityConfig {
                dir: sdir,
                ..durability.clone()
            };
            engine.shards[k].wal = Some(WalState::create(
                cfg,
                engine_id,
                k as u32,
                shard_count as u32,
                Arc::clone(&degraded),
                Arc::clone(&engine.shards[k].telemetry),
                false,
            )?);
        }
        if let Some(t) = recover_timer {
            // One wall-clock observation for the whole recovery, on shard
            // 0's cell (it exists even for a 1-shard engine).
            engine.shards[0].telemetry.record_duration(
                telemetry::Op::Recover,
                telemetry::Tier::Live,
                t.elapsed().as_nanos() as u64,
            );
        }
        Ok((engine, report))
    }

    /// The engine's configuration (with [`EngineConfig::shards`] resolved
    /// to the actual shard count).
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Registers a plan (hierarchy + distribution + prices + backend
    /// choice), building its shared reachability index once. Fails with
    /// [`ServiceError::Core`] when the spec is inconsistent (e.g. weight
    /// vector length mismatch). With durability on, the full plan payload
    /// is logged to **shard 0** (plans are global; one authoritative copy
    /// avoids cross-file ordering anomalies) and fsynced inline — plan
    /// registration is rare — before the id is returned, so recovery is
    /// self-contained.
    pub fn register_plan(&self, spec: PlanSpec) -> Result<PlanId, ServiceError> {
        self.check_active()?;
        let entry = Arc::new(PlanEntry::build(spec, self.config.pool_cap)?);
        let mut plans = self.plans.write().expect("plans lock poisoned");
        let index = u32::try_from(plans.len()).expect("plan count fits u32");
        if let Some(wal) = &self.shards[0].wal {
            let (dag, weights, costs, reach, compiled) = entry.artifacts();
            wal.append(&WalEvent::PlanRegistered {
                plan: index,
                payload: plan_payload(dag, weights, costs, reach, compiled),
            })?;
            wal.sync()?;
        }
        plans.push(entry);
        Ok(PlanId {
            engine: self.engine_id,
            index,
        })
    }

    /// Opens a suspended session for `kind` on `plan`, placing it on the
    /// next shard round-robin.
    ///
    /// Policy instances come from the plan's pool when warm (journal reset,
    /// O(Δ)); construction/reset failures — an oversized
    /// [`PolicyKind::Optimal`] instance, [`PolicyKind::GreedyTree`] on a
    /// DAG — surface as [`ServiceError::Core`] to this caller alone. At the
    /// admission limit every shard's idle heap is drained of expired
    /// sessions first (O(log n) per eviction); if nothing is reclaimable
    /// the open fails with [`ServiceError::AtCapacity`], whose
    /// `retryable`/`oldest_idle` fields tell the caller whether and when
    /// backing off can help.
    pub fn open_session(
        &self,
        plan: PlanId,
        kind: PolicyKind,
    ) -> Result<SessionHandle<'_>, ServiceError> {
        self.check_active()?;
        let timer = self.op_timer();
        let now = self.tick();
        if plan.engine != self.engine_id {
            return Err(ServiceError::UnknownPlan(plan));
        }
        let plan_entry = {
            let plans = self.plans.read().expect("plans lock poisoned");
            plans
                .get(plan.index as usize)
                .cloned()
                .ok_or(ServiceError::UnknownPlan(plan))?
        };

        // Reserve a live slot, reclaiming expired sessions when full.
        if !self.reserve_live() {
            let mut oldest_idle = None;
            for shard in &self.shards {
                let (_, oldest) = self.evict_expired(shard);
                oldest_idle = oldest_idle.max(oldest);
            }
            if !self.reserve_live() {
                return Err(ServiceError::AtCapacity {
                    live: self.live.load(Ordering::Relaxed),
                    limit: self.config.max_sessions,
                    retryable: self.config.idle_ticks.is_some(),
                    oldest_idle,
                });
            }
        }

        let shard_k = self.placement.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        let shard = &self.shards[shard_k];
        // Compiled tier first: a hot plan serves from its flat array with no
        // policy instance and no pool traffic at all.
        let compiled =
            compiled_tree_for(self.config.compiled, &plan_entry, kind).and_then(|tree| {
                let cursor = tree.cursor(&plan_entry.ctx(), self.config.max_queries);
                if cursor.needs_fallback() {
                    // Truncated at the root (e.g. `max_depth` 0): nothing
                    // compiled to serve, so this session opens live.
                    shard
                        .counters
                        .compiled_fallbacks
                        .fetch_add(1, Ordering::Relaxed);
                    None
                } else {
                    Some(SessionCore::Compiled { tree, cursor })
                }
            });
        let core = match compiled {
            Some(core) => core,
            None => {
                let (mut policy, pool_hit) = plan_entry.acquire(kind);
                let started = catch_unwind(AssertUnwindSafe(|| {
                    if matches!(failpoints::hit("engine.policy"), Some(FaultAction::Panic)) {
                        panic!("injected policy panic");
                    }
                    SessionStepper::start(
                        policy.as_mut(),
                        &plan_entry.ctx(),
                        self.config.max_queries,
                    )
                }));
                let stepper = match started {
                    Ok(Ok(s)) => s,
                    Ok(Err(e)) => {
                        // A failed reset leaves the instance in an unknown
                        // state: drop it rather than re-pool it, release the
                        // reservation, and hand the error to this caller only.
                        self.live.fetch_sub(1, Ordering::Relaxed);
                        shard.counters.errored.fetch_add(1, Ordering::Relaxed);
                        return Err(e.into());
                    }
                    Err(_) => {
                        // Panic during construction: quarantine the instance.
                        self.live.fetch_sub(1, Ordering::Relaxed);
                        shard.counters.panicked.fetch_add(1, Ordering::Relaxed);
                        return Err(ServiceError::PolicyPanicked);
                    }
                };
                if pool_hit {
                    shard.counters.pool_hits.fetch_add(1, Ordering::Relaxed);
                }
                SessionCore::Live { policy, stepper }
            }
        };

        let session = LiveSession {
            plan: plan_entry,
            plan_index: plan.index,
            kind,
            core,
            answers: Vec::new(),
            last_touch: now,
        };
        let opened_tier = if session.core.is_compiled() {
            telemetry::Tier::Compiled
        } else {
            telemetry::Tier::Live
        };
        let local = allocate_slot(shard);
        let slot_arc = slot_arc(shard, local);
        let generation = {
            let mut slot = slot_arc.lock().expect("slot lock poisoned");
            debug_assert!(slot.session.is_none(), "free list handed out a live slot");
            // Log before publishing: on failure the caller never saw an id,
            // so nothing durable or visible changed.
            if let Some(wal) = &shard.wal {
                if let Err(e) = wal.append(&WalEvent::SessionOpened {
                    index: local,
                    generation: slot.generation,
                    plan: plan.index,
                    kind: session_kind_code(kind, session.core.is_compiled()),
                }) {
                    drop(slot);
                    self.release_slot(shard, local);
                    shard.counters.errored.fetch_add(1, Ordering::Relaxed);
                    return Err(e);
                }
            }
            slot.session = Some(session);
            self.touch_idle(shard, local, slot.generation, now);
            slot.generation
        };
        shard.counters.opened.fetch_add(1, Ordering::Relaxed);
        self.record_op(shard_k, telemetry::Op::Open, opened_tier, kind, timer);
        self.maybe_autocompact(shard_k);
        Ok(SessionHandle {
            engine: self,
            id: SessionId {
                engine: self.engine_id,
                index: local * self.shards.len() as u32 + shard_k as u32,
                generation,
            },
        })
    }

    /// Reattaches to a live session by id (e.g. after the id travelled
    /// through a task queue). The id is validated lazily by the next
    /// operation.
    pub fn session(&self, id: SessionId) -> SessionHandle<'_> {
        SessionHandle { engine: self, id }
    }

    /// What session `id` needs next — a question to forward to its oracle,
    /// or its resolved target. A session that exhausts its query cap is
    /// torn down (its policy instance returns to the pool) and
    /// [`CoreError::Diverged`] is returned to this caller; every other
    /// session is untouched. Works in degraded mode: question derivation is
    /// deterministic, so it never needs the log.
    pub fn next_question(&self, id: SessionId) -> Result<SessionStep, ServiceError> {
        let timer = self.op_timer();
        let (shard_k, step, kind) = self.step_session(
            id,
            |s| {
                let LiveSession { plan, core, .. } = s;
                match core {
                    SessionCore::Live { policy, stepper } => stepper
                        .next_question(policy.as_mut(), &plan.ctx())
                        .map(|step| (step, false)),
                    SessionCore::Compiled { tree, cursor } => {
                        cursor.next_question(tree).map(|step| (step, true))
                    }
                }
            },
            |_, _| None,
        )?;
        let shard = &self.shards[shard_k];
        shard.counters.steps.fetch_add(1, Ordering::Relaxed);
        let tier = match &step {
            Ok((_, true)) => telemetry::Tier::Compiled,
            _ => telemetry::Tier::Live,
        };
        self.record_op(shard_k, telemetry::Op::Next, tier, kind, timer);
        match step {
            Ok((step, compiled)) => {
                if compiled {
                    shard.counters.compiled_hits.fetch_add(1, Ordering::Relaxed);
                }
                Ok(step)
            }
            Err(e @ CoreError::Diverged { .. }) => {
                // The search ran out of budget: reclaim the slot. The policy
                // itself is healthy (divergence is a budget condition), so it
                // may re-enter the pool.
                let _ = self.remove(id, Removal::Errored);
                Err(e.into())
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Feeds the oracle's answer for the pending question of session `id`.
    /// Answering with no question outstanding is a recoverable protocol
    /// error ([`CoreError::SessionMisuse`]); the session stays live. With
    /// durability on, the answer is logged (under the session's lock, so
    /// log order matches apply order) before the call returns — a
    /// [`ServiceError::Durability`] return means the answer was **not**
    /// durably acknowledged: the engine has degraded and the session is
    /// torn down (its in-memory state already held the unlogged answer, so
    /// leaving it live would let degraded-mode reads diverge from what
    /// recovery replays). [`SearchEngine::recover`] resurrects it at its
    /// acknowledged answer history.
    pub fn answer(&self, id: SessionId, yes: bool) -> Result<(), ServiceError> {
        self.check_active()?;
        let timer = self.op_timer();
        let max_queries = self.config.max_queries;
        let (shard_k, fed, kind) = self.step_session(
            id,
            |s| {
                let LiveSession {
                    plan,
                    kind,
                    core,
                    answers,
                    ..
                } = s;
                let tier = match core {
                    SessionCore::Live { policy, stepper } => {
                        stepper.answer(policy.as_mut(), &plan.ctx(), yes)?;
                        answers.push(yes);
                        StepTier::Live
                    }
                    SessionCore::Compiled { tree, cursor } => {
                        cursor.answer(tree, &plan.ctx(), yes)?;
                        answers.push(yes);
                        if cursor.needs_fallback() {
                            // Crossed the truncation frontier: materialise
                            // the live policy by replaying the acknowledged
                            // answer history. Policies are deterministic, so
                            // the transcript continues bit-identically — the
                            // tier switch is invisible to the caller.
                            let (mut policy, _) = plan.acquire(*kind);
                            let stepper = SessionStepper::replay(
                                policy.as_mut(),
                                &plan.ctx(),
                                max_queries,
                                answers,
                            )?;
                            *core = SessionCore::Live { policy, stepper };
                            StepTier::Fallback
                        } else {
                            StepTier::Compiled
                        }
                    }
                };
                Ok((
                    u32::try_from(answers.len() - 1).expect("answer count fits u32"),
                    tier,
                ))
            },
            |(seq, _), local| {
                Some(WalEvent::Answered {
                    index: local,
                    generation: id.generation,
                    seq: *seq,
                    yes,
                })
            },
        )?;
        let shard = &self.shards[shard_k];
        shard.counters.steps.fetch_add(1, Ordering::Relaxed);
        let tier = match &fed {
            Ok((_, tier)) => tier.telemetry(),
            Err(_) => telemetry::Tier::Live,
        };
        self.record_op(shard_k, telemetry::Op::Answer, tier, kind, timer);
        match &fed {
            Ok((_, StepTier::Compiled)) => {
                shard.counters.compiled_hits.fetch_add(1, Ordering::Relaxed);
            }
            Ok((_, StepTier::Fallback)) => {
                shard
                    .counters
                    .compiled_fallbacks
                    .fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        fed.map_err(ServiceError::from)?;
        self.maybe_autocompact(shard_k);
        Ok(())
    }

    /// Completes a resolved session: returns its [`SearchOutcome`], frees
    /// the slot and returns the policy instance to the plan's pool. While
    /// unresolved this errs with [`CoreError::SessionMisuse`] and the
    /// session stays live — as it does if the completion cannot be durably
    /// logged ([`ServiceError::Durability`]).
    pub fn finish(&self, id: SessionId) -> Result<SearchOutcome, ServiceError> {
        self.check_active()?;
        let timer = self.op_timer();
        // Probe resolution and take the session under ONE slot-lock
        // acquisition: a probe-then-remove pair would let a concurrent
        // cancel/evict slip between the two and discard the outcome.
        let (shard_k, local, slot_arc) = self.locate(id)?;
        let shard = &self.shards[shard_k];
        let (outcome, session) = {
            let mut slot = slot_arc.lock().expect("slot lock poisoned");
            if slot.generation != id.generation {
                return Err(ServiceError::UnknownSession(id));
            }
            let session = slot
                .session
                .as_mut()
                .ok_or(ServiceError::UnknownSession(id))?;
            let now = self.tick();
            session.last_touch = now;
            // Keep the idle heap current even though the slot is usually
            // about to be freed: if this finish fails and the session stays
            // live (unresolved → SessionMisuse, or the Finished record
            // cannot be durably logged), its previous heap entry no longer
            // matches last_touch and would be discarded as stale residue,
            // leaving the session idle-eviction-proof forever.
            self.touch_idle(shard, local, id.generation, now);
            let finished = catch_unwind(AssertUnwindSafe(|| {
                if matches!(failpoints::hit("engine.policy"), Some(FaultAction::Panic)) {
                    panic!("injected policy panic");
                }
                match &session.core {
                    SessionCore::Live { policy, stepper } => stepper.finish(policy.as_ref()),
                    SessionCore::Compiled { cursor, .. } => cursor.finish(),
                }
            }));
            let outcome = match finished {
                Ok(Ok(outcome)) => outcome,
                Ok(Err(e)) => return Err(e.into()),
                Err(_) => return self.quarantine(shard_k, local, slot),
            };
            if let Some(wal) = &shard.wal {
                // Ack durably before removing: on failure the session stays
                // live (and recoverable) while the error propagates.
                wal.append(&WalEvent::Finished {
                    index: local,
                    generation: id.generation,
                })?;
            }
            slot.generation = slot.generation.wrapping_add(1);
            (outcome, slot.session.take().expect("checked above"))
        };
        let kind = session.kind;
        let finish_tier = if session.core.is_compiled() {
            telemetry::Tier::Compiled
        } else {
            telemetry::Tier::Live
        };
        if self.telemetry_enabled {
            // Realized cost per finished session — the paper's objective,
            // recorded next to the predicted expected cost.
            session
                .plan
                .record_finish(kind, outcome.queries, outcome.price);
        }
        session.release_policy();
        self.release_slot(shard, local);
        shard.counters.finished.fetch_add(1, Ordering::Relaxed);
        self.record_op(shard_k, telemetry::Op::Finish, finish_tier, kind, timer);
        self.maybe_autocompact(shard_k);
        Ok(outcome)
    }

    /// Discards a session regardless of progress, reclaiming its slot.
    pub fn cancel(&self, id: SessionId) -> Result<(), ServiceError> {
        self.check_active()?;
        let timer = self.op_timer();
        let (shard_k, kind, tier) = self.remove(id, Removal::Cancelled)?;
        self.record_op(shard_k, telemetry::Op::Cancel, tier, kind, timer);
        Ok(())
    }

    /// Evicts every session idle for at least the configured
    /// [`EngineConfig::idle_ticks`], returning how many were reclaimed.
    /// No-op (returns 0) when eviction is disabled or the engine is
    /// degraded (a degraded engine must not silently drop recoverable
    /// sessions).
    ///
    /// Cost is O(expired · log live), not O(`max_sessions`): each shard
    /// pops its last-touch heap only while the root has actually expired.
    pub fn sweep_idle(&self) -> usize {
        let mut evicted = 0;
        for shard in &self.shards {
            evicted += self.evict_expired(shard).0;
        }
        evicted
    }

    /// Currently live sessions.
    pub fn live_sessions(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// A snapshot of the activity counters, aggregated across shards.
    /// After a recovery, the durable lifecycle counters
    /// (`opened`/`finished`/`cancelled`/`evicted`) are restored from the
    /// surviving log window — exact until a compaction trims retired
    /// sessions' history; the purely operational ones (`steps`,
    /// `pool_hits`, `errored`, `panicked`) restart from zero.
    pub fn stats(&self) -> EngineStats {
        let entered = self.degraded.entered();
        let mut stats = EngineStats {
            live: self.live.load(Ordering::Relaxed),
            peak_live: self.peak_live.load(Ordering::Relaxed),
            shards: self.shards.len(),
            opened: 0,
            finished: 0,
            cancelled: 0,
            evicted: 0,
            errored: 0,
            panicked: 0,
            steps: 0,
            pool_hits: 0,
            compiled_hits: 0,
            compiled_fallbacks: 0,
            wal_records: 0,
            degraded: entered.is_some(),
            degraded_since: entered.as_ref().map(|(at, _)| *at),
            degraded_reason: entered.map(|(_, reason)| reason),
        };
        for shard in &self.shards {
            let c = &shard.counters;
            stats.opened += c.opened.load(Ordering::Relaxed);
            stats.finished += c.finished.load(Ordering::Relaxed);
            stats.cancelled += c.cancelled.load(Ordering::Relaxed);
            stats.evicted += c.evicted.load(Ordering::Relaxed);
            stats.errored += c.errored.load(Ordering::Relaxed);
            stats.panicked += c.panicked.load(Ordering::Relaxed);
            stats.steps += c.steps.load(Ordering::Relaxed);
            stats.pool_hits += c.pool_hits.load(Ordering::Relaxed);
            stats.compiled_hits += c.compiled_hits.load(Ordering::Relaxed);
            stats.compiled_fallbacks += c.compiled_fallbacks.load(Ordering::Relaxed);
            if let Some(wal) = &shard.wal {
                stats.wal_records += wal.total_records.load(Ordering::Relaxed);
            }
        }
        stats
    }

    /// The per-shard slices of [`Self::stats`], *before* summation, so
    /// shard imbalance — skewed live counts, one shard absorbing the
    /// evictions — is observable. Counters on different shards are
    /// sampled at slightly different instants; each shard's own row is
    /// internally consistent the same way [`Self::stats`] is.
    pub fn stats_per_shard(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(k, shard)| {
                let c = &shard.counters;
                ShardStats {
                    shard: k as u32,
                    live: shard.live.load(Ordering::Relaxed),
                    opened: c.opened.load(Ordering::Relaxed),
                    finished: c.finished.load(Ordering::Relaxed),
                    cancelled: c.cancelled.load(Ordering::Relaxed),
                    evicted: c.evicted.load(Ordering::Relaxed),
                    errored: c.errored.load(Ordering::Relaxed),
                    panicked: c.panicked.load(Ordering::Relaxed),
                    steps: c.steps.load(Ordering::Relaxed),
                    pool_hits: c.pool_hits.load(Ordering::Relaxed),
                    compiled_hits: c.compiled_hits.load(Ordering::Relaxed),
                    compiled_fallbacks: c.compiled_fallbacks.load(Ordering::Relaxed),
                    wal_records: shard
                        .wal
                        .as_ref()
                        .map_or(0, |w| w.total_records.load(Ordering::Relaxed)),
                }
            })
            .collect()
    }

    /// A cross-shard aggregation of the telemetry cells: per-(op, tier)
    /// latency histograms, per-(op, kind) counts, WAL internals, and
    /// per-plan realized/predicted cost rows. Cumulative since
    /// construction; difference two snapshots with
    /// [`TelemetrySnapshot::minus`] for rates. With telemetry disabled
    /// the snapshot exists but is all-zero (`enabled` says which).
    pub fn telemetry(&self) -> TelemetrySnapshot {
        let mut snap = TelemetrySnapshot::empty(self.telemetry_enabled, self.shards.len() as u32);
        snap.clock = self.clock.load(Ordering::Relaxed);
        for shard in &self.shards {
            snap.absorb_shard(&shard.telemetry);
        }
        let plans = self.plans.read().expect("plans lock poisoned");
        snap.plans = plans
            .iter()
            .enumerate()
            .map(|(i, p)| p.cost_snapshot(i as u32))
            .filter(|p| !p.kinds.is_empty())
            .collect();
        snap
    }

    /// Drains every shard's slow-op journal: operations whose wall time
    /// crossed the `AIGS_SLOW_OP_NS` threshold (default 1 ms), oldest
    /// first per shard. Each ring holds the 64 most recent entries;
    /// [`TelemetrySnapshot::slow_dropped`] counts overwrites.
    pub fn drain_slow_ops(&self) -> Vec<SlowOp> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.telemetry.drain_slow());
        }
        out
    }

    /// The predicted expected cost of serving `kind` on `plan` — the
    /// paper's objective (Definition 8), computed by evaluating the
    /// policy exhaustively over the plan's prior and cached on the plan.
    /// `Ok(None)` when the kind has no deterministic evaluation
    /// (`Random`) or the evaluation failed. The first call per (plan,
    /// kind) costs O(targets × session length); telemetry snapshots
    /// surface the cached value next to the realized distribution so
    /// predicted-vs-realized drift is directly readable.
    pub fn predict_expected_cost(
        &self,
        plan: PlanId,
        kind: PolicyKind,
    ) -> Result<Option<PredictedCost>, ServiceError> {
        if plan.engine != self.engine_id {
            return Err(ServiceError::UnknownPlan(plan));
        }
        let entry = {
            let plans = self.plans.read().expect("plans lock poisoned");
            plans
                .get(plan.index as usize)
                .cloned()
                .ok_or(ServiceError::UnknownPlan(plan))?
        };
        Ok(entry.predict(kind))
    }

    /// Renders the engine's stats and telemetry as Prometheus text
    /// exposition (version 0.0.4): `aigs_*` gauges, counters, and
    /// cumulative `le`-bucketed histograms. Served over HTTP by
    /// [`crate::wire::WireServer`] at `GET /metrics`.
    pub fn prometheus_text(&self) -> String {
        use std::fmt::Write;
        let stats = self.stats();
        let telem = self.telemetry();
        let mut out = String::with_capacity(4096);
        let _ = writeln!(out, "# TYPE aigs_live_sessions gauge");
        let _ = writeln!(out, "aigs_live_sessions {}", stats.live);
        let _ = writeln!(out, "aigs_peak_live_sessions {}", stats.peak_live);
        let _ = writeln!(out, "aigs_shards {}", stats.shards);
        let _ = writeln!(out, "aigs_degraded {}", u8::from(stats.degraded));
        if let Some(since) = stats.degraded_since {
            let _ = writeln!(out, "aigs_degraded_since_clock {since}");
        }
        let _ = writeln!(out, "aigs_wal_records_total {}", stats.wal_records);

        let _ = writeln!(out, "# TYPE aigs_ops_total counter");
        for (o, op) in telemetry::OPS.iter().enumerate() {
            for (slot, &count) in telem.op_kind[o].iter().enumerate() {
                if count > 0 {
                    let _ = writeln!(
                        out,
                        "aigs_ops_total{{op=\"{}\",kind=\"{}\"}} {count}",
                        op.name(),
                        telemetry::kind_slot_name(slot)
                    );
                }
            }
        }
        let _ = writeln!(out, "# TYPE aigs_op_duration_ns histogram");
        for (o, op) in telemetry::OPS.iter().enumerate() {
            for (t, tier) in telemetry::TIERS.iter().enumerate() {
                let h = &telem.op_tier_ns[o][t];
                if h.count() > 0 {
                    render_histogram(
                        &mut out,
                        "aigs_op_duration_ns",
                        &format!("op=\"{}\",tier=\"{}\"", op.name(), tier.name()),
                        h,
                    );
                }
            }
        }

        let _ = writeln!(out, "# TYPE aigs_shard_live gauge");
        for row in self.stats_per_shard() {
            let _ = writeln!(
                out,
                "aigs_shard_live{{shard=\"{}\"}} {}",
                row.shard, row.live
            );
            let _ = writeln!(
                out,
                "aigs_shard_steps_total{{shard=\"{}\"}} {}",
                row.shard, row.steps
            );
            let _ = writeln!(
                out,
                "aigs_shard_evicted_total{{shard=\"{}\"}} {}",
                row.shard, row.evicted
            );
            let _ = writeln!(
                out,
                "aigs_shard_wal_records_total{{shard=\"{}\"}} {}",
                row.shard, row.wal_records
            );
        }

        let _ = writeln!(out, "# TYPE aigs_wal_append_bytes_total counter");
        let _ = writeln!(
            out,
            "aigs_wal_append_bytes_total {}",
            telem.wal.append_bytes
        );
        let _ = writeln!(
            out,
            "aigs_wal_flush_signals_total {}",
            telem.wal.flush_signals
        );
        let _ = writeln!(out, "aigs_wal_compactions_total {}", telem.wal.compactions);
        let _ = writeln!(
            out,
            "aigs_wal_degraded_transitions_total {}",
            telem.wal.degraded_transitions
        );
        if telem.wal.fsync_ns.count() > 0 {
            render_histogram(
                &mut out,
                "aigs_wal_fsync_duration_ns",
                "",
                &telem.wal.fsync_ns,
            );
            render_histogram(&mut out, "aigs_wal_fsync_batch", "", &telem.wal.fsync_batch);
        }

        let _ = writeln!(out, "# TYPE aigs_plan_realized_queries histogram");
        for plan in &telem.plans {
            for row in &plan.kinds {
                let labels = format!("plan=\"{}\",kind=\"{}\"", plan.plan, row.kind);
                if row.queries.count() > 0 {
                    render_histogram(
                        &mut out,
                        "aigs_plan_realized_queries",
                        &labels,
                        &row.queries,
                    );
                    let _ = writeln!(
                        out,
                        "aigs_plan_realized_price_total{{{labels}}} {}",
                        row.price_sum
                    );
                }
                if let Some(p) = row.predicted {
                    let _ = writeln!(
                        out,
                        "aigs_plan_predicted_queries{{{labels}}} {}",
                        p.expected_queries
                    );
                    let _ = writeln!(
                        out,
                        "aigs_plan_predicted_price{{{labels}}} {}",
                        p.expected_price
                    );
                }
            }
        }
        let _ = writeln!(out, "aigs_slow_ops_dropped_total {}", telem.slow_dropped);
        out
    }

    /// Compacts every shard's write-ahead log now: rotates the tail,
    /// snapshots the shard's live state, and atomically publishes the
    /// snapshot. No-op with durability off or for shards already
    /// compacting; fails with [`ServiceError::Degraded`] on a degraded
    /// engine. Runs automatically per shard when its tail exceeds
    /// [`DurabilityConfig::snapshot_every`] records.
    pub fn compact(&self) -> Result<(), ServiceError> {
        for k in 0..self.shards.len() {
            self.compact_shard(k)?;
        }
        Ok(())
    }

    /// Forces buffered WAL records on every shard to stable storage
    /// (useful before a graceful shutdown when fsync batching is on).
    /// No-op with durability off.
    pub fn sync_wal(&self) -> Result<(), ServiceError> {
        for shard in &self.shards {
            if let Some(wal) = &shard.wal {
                wal.sync()?;
            }
        }
        Ok(())
    }

    // ---- internals ----------------------------------------------------

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn is_degraded(&self) -> bool {
        self.degraded.is()
    }

    /// Starts an operation timer — `None` (and therefore zero overhead
    /// downstream) when telemetry is disabled.
    #[inline]
    fn op_timer(&self) -> Option<std::time::Instant> {
        self.telemetry_enabled.then(std::time::Instant::now)
    }

    /// Records one completed operation on `shard_k`'s telemetry cell and
    /// journals it if it crossed the slow-op threshold. No-op when
    /// `timer` is `None` (telemetry disabled).
    #[inline]
    fn record_op(
        &self,
        shard_k: usize,
        op: telemetry::Op,
        tier: telemetry::Tier,
        kind: PolicyKind,
        timer: Option<std::time::Instant>,
    ) {
        let Some(t) = timer else { return };
        let ns = t.elapsed().as_nanos() as u64;
        let cell = &self.shards[shard_k].telemetry;
        cell.record_op(op, tier, kind, ns);
        cell.note_slow(
            self.slow_threshold_ns,
            SlowOp {
                shard: shard_k as u32,
                op,
                tier,
                kind,
                duration_ns: ns,
                at: self.clock.load(Ordering::Relaxed),
            },
        );
    }

    /// Gate for mutating operations: a degraded engine is read-mostly.
    fn check_active(&self) -> Result<(), ServiceError> {
        if self.is_degraded() {
            return Err(ServiceError::Degraded);
        }
        Ok(())
    }

    fn compact_shard(&self, shard_k: usize) -> Result<(), ServiceError> {
        let Some(wal) = &self.shards[shard_k].wal else {
            return Ok(());
        };
        if self.is_degraded() {
            return Err(ServiceError::Degraded);
        }
        if wal.compacting.swap(true, Ordering::SeqCst) {
            return Ok(());
        }
        let result = (|| {
            wal.rotate()?;
            let tmp = wal.config.dir.join(SNAPSHOT_TMP_FILE);
            self.write_shard_snapshot(&tmp, shard_k)?;
            wal.publish_snapshot()
        })();
        wal.compacting.store(false, Ordering::SeqCst);
        if result.is_ok() {
            self.shards[shard_k].telemetry.wal_compaction();
        }
        result
    }

    fn maybe_autocompact(&self, shard_k: usize) {
        let Some(wal) = &self.shards[shard_k].wal else {
            return;
        };
        let Some(limit) = wal.config.snapshot_every else {
            return;
        };
        if !self.is_degraded() && wal.tail_records.load(Ordering::Relaxed) >= limit {
            // Failures surface on the next explicit compact/mutation; the
            // triggering operation itself already succeeded durably.
            let _ = self.compact_shard(shard_k);
        }
    }

    /// Writes one shard's compacted WAL (identity header + live sessions,
    /// plus the plan payloads on shard 0) to `path` and fsyncs it. Used by
    /// both compaction and post-recovery re-initialisation; never touches
    /// the shard's tail writer, so it needs no lock ordering against
    /// appends beyond the per-slot locks.
    fn write_shard_snapshot(&self, path: &Path, shard_k: usize) -> Result<(), ServiceError> {
        let shard = &self.shards[shard_k];
        let mut snap = SessionWal::create(path, FsyncPolicy::Never).map_err(durability_err)?;
        snap.append_buffered(&WalEvent::EngineMeta {
            version: WAL_VERSION,
            engine_id: self.engine_id,
        })
        .map_err(durability_err)?;
        snap.append_buffered(&WalEvent::ShardMeta {
            shard: shard_k as u32,
            shards: self.shards.len() as u32,
        })
        .map_err(durability_err)?;
        if shard_k == 0 {
            let plans = self.plans.read().expect("plans lock poisoned");
            for (i, entry) in plans.iter().enumerate() {
                let (dag, weights, costs, reach, compiled) = entry.artifacts();
                snap.append_buffered(&WalEvent::PlanRegistered {
                    plan: i as u32,
                    payload: plan_payload(dag, weights, costs, reach, compiled),
                })
                .map_err(durability_err)?;
            }
        }
        let slots: Vec<(u32, Arc<Mutex<Slot>>)> = {
            let slots = shard.slots.read().expect("slots lock poisoned");
            slots
                .iter()
                .enumerate()
                .map(|(i, s)| (i as u32, Arc::clone(s)))
                .collect()
        };
        for (local, slot_arc) in slots {
            // Capture each session atomically under its lock; concurrent
            // later events land in the rotated tail and replay idempotently
            // on top (duplicates skip by sequence number).
            let slot = slot_arc.lock().expect("slot lock poisoned");
            let Some(s) = slot.session.as_ref() else {
                // Empty slot: its retire tombstones are being compacted
                // away, so persist the generation as a watermark — recovery
                // must park the slot here, not rebuild it at generation 0
                // where a stale pre-crash id would alias the next tenant.
                if slot.generation > 0 {
                    snap.append_buffered(&WalEvent::SlotRetired {
                        index: local,
                        generation: slot.generation,
                    })
                    .map_err(durability_err)?;
                }
                continue;
            };
            // The mode bit records the session's CURRENT tier, not the one
            // it opened on: a fallen-back session snapshots as plain live.
            snap.append_buffered(&WalEvent::SessionOpened {
                index: local,
                generation: slot.generation,
                plan: s.plan_index,
                kind: session_kind_code(s.kind, s.core.is_compiled()),
            })
            .map_err(durability_err)?;
            for (seq, &yes) in s.answers.iter().enumerate() {
                snap.append_buffered(&WalEvent::Answered {
                    index: local,
                    generation: slot.generation,
                    seq: seq as u32,
                    yes,
                })
                .map_err(durability_err)?;
            }
        }
        snap.sync().map_err(durability_err)?;
        Ok(())
    }

    /// Atomically claims one unit of live capacity; callers must release it
    /// (decrement) on every failure path.
    fn reserve_live(&self) -> bool {
        match self
            .live
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |l| {
                (l < self.config.max_sessions).then_some(l + 1)
            }) {
            Ok(prev) => {
                // Record the claimed value, not a re-load: a concurrent
                // release between the claim and a load would hide the peak.
                self.peak_live.fetch_max(prev + 1, Ordering::Relaxed);
                true
            }
            Err(_) => false,
        }
    }

    /// Pushes an idle-heap entry for a just-touched session. Called under
    /// the session's slot lock (the slot→heap order is the sanctioned
    /// one); no-op when idle eviction is off. When lazy entries outgrow
    /// `2·slots + slack`, the heap is compacted to its newest entry per
    /// slot — per slot the newest touch also carries the newest
    /// generation, so no live session's entry is lost.
    fn touch_idle(&self, shard: &Shard, local: u32, generation: u32, touch: u64) {
        if self.config.idle_ticks.is_none() {
            return;
        }
        let mut heap = shard.idle.lock().expect("idle heap poisoned");
        heap.push(Reverse((touch, local, generation)));
        // The slot count must be read *under* the heap lock: every entry
        // already in the heap was pushed (under this lock) for a slot that
        // existed at push time, and slots only grow, so a count taken here
        // bounds every `l` below. A count taken before the lock does not —
        // a concurrent open_session could allocate a new slot and push its
        // entry first, and the compaction would index out of bounds.
        // Lock order heap→slots-read is safe: no thread takes the heap
        // lock while holding the slots write lock.
        let slot_count = shard.slots.read().expect("slots lock poisoned").len();
        if heap.len() > 2 * slot_count + IDLE_HEAP_SLACK {
            let mut newest: Vec<Option<(u64, u32)>> = vec![None; slot_count];
            for &Reverse((t, l, g)) in heap.iter() {
                let cell = &mut newest[l as usize];
                if cell.is_none_or(|(bt, _)| t > bt) {
                    *cell = Some((t, g));
                }
            }
            *heap = newest
                .into_iter()
                .enumerate()
                .filter_map(|(l, e)| e.map(|(t, g)| Reverse((t, l as u32, g))))
                .collect();
        }
    }

    /// Drains one shard's expired sessions off its last-touch heap:
    /// returns how many were evicted, plus the age of the shard's oldest
    /// still-live session (the caller's backoff hint). Entries whose slot
    /// has moved on — newer generation, or a later touch — are lazy
    /// residue and are discarded; every live session keeps exactly one
    /// current entry (pushed at its last touch), so the first *current*
    /// entry popped is the shard's true least-recently-touched session,
    /// and if it has not expired nothing after it can have.
    fn evict_expired(&self, shard: &Shard) -> (usize, Option<u64>) {
        let Some(max_idle) = self.config.idle_ticks else {
            return (0, None);
        };
        if self.is_degraded() {
            return (0, None);
        }
        let timer = self.op_timer();
        let now = self.clock.load(Ordering::Relaxed);
        let mut evicted = 0;
        let oldest = loop {
            let Some(entry) = shard.idle.lock().expect("idle heap poisoned").pop() else {
                break None;
            };
            let Reverse((touch, local, generation)) = entry;
            let slot_arc = slot_arc(shard, local);
            let reclaimed = {
                let mut slot = slot_arc.lock().expect("slot lock poisoned");
                let current = slot.generation == generation
                    && slot.session.as_ref().is_some_and(|s| s.last_touch == touch);
                if !current {
                    continue; // lazy residue of an older touch or tenant
                }
                let age = now.saturating_sub(touch);
                if age < max_idle {
                    // The shard's oldest live session, still fresh: put its
                    // entry back and stop — the heap holds nothing older.
                    drop(slot);
                    shard.idle.lock().expect("idle heap poisoned").push(entry);
                    break Some(age);
                }
                // Expired: evict under the slot lock. The eviction event is
                // logged best-effort (an unlogged eviction merely
                // resurrects the session on recovery).
                if let Some(wal) = &shard.wal {
                    wal.append_best_effort(&WalEvent::Evicted {
                        index: local,
                        generation: slot.generation,
                    });
                }
                slot.generation = slot.generation.wrapping_add(1);
                slot.session.take()
            };
            if let Some(s) = reclaimed {
                // Per-kind eviction counts reconcile exactly with the
                // `evicted` counter; the drain's single latency
                // observation is recorded below.
                shard.telemetry.count_op(telemetry::Op::Evict, s.kind);
                s.release_policy();
                self.release_slot(shard, local);
                shard.counters.evicted.fetch_add(1, Ordering::Relaxed);
                evicted += 1;
            }
        };
        if evicted > 0 {
            if let Some(t) = timer {
                shard.telemetry.record_duration(
                    telemetry::Op::Evict,
                    telemetry::Tier::Live,
                    t.elapsed().as_nanos() as u64,
                );
            }
        }
        (evicted, oldest)
    }

    fn release_slot(&self, shard: &Shard, local: u32) {
        self.live.fetch_sub(1, Ordering::Relaxed);
        shard.live.fetch_sub(1, Ordering::Relaxed);
        shard.free.lock().expect("free list poisoned").push(local);
    }

    /// Resolves `id` to its shard, local slot index and slot, rejecting
    /// ids issued by another engine.
    fn locate(&self, id: SessionId) -> Result<(usize, u32, Arc<Mutex<Slot>>), ServiceError> {
        if id.engine != self.engine_id {
            return Err(ServiceError::UnknownSession(id));
        }
        let shard_count = self.shards.len() as u32;
        let shard_k = (id.index % shard_count) as usize;
        let local = id.index / shard_count;
        let slots = self.shards[shard_k]
            .slots
            .read()
            .expect("slots lock poisoned");
        slots
            .get(local as usize)
            .cloned()
            .map(|arc| (shard_k, local, arc))
            .ok_or(ServiceError::UnknownSession(id))
    }

    /// Runs `f` — a step that calls into the session's policy — on the live
    /// session behind `id`, touching its idle clock; returns the owning
    /// shard's index alongside `f`'s outcome.
    ///
    /// The policy call is wrapped in `catch_unwind`: a panicking policy
    /// quarantines **only its own session** (see [`Self::quarantine`]) and
    /// surfaces [`ServiceError::PolicyPanicked`] to this caller; every
    /// other session, and the engine itself, keeps serving. On success,
    /// `event` may produce a WAL record (indices in events are
    /// shard-local, hence the `local` argument) which is appended to the
    /// owning shard's log while the slot lock is still held — guaranteeing
    /// the log's per-session order matches the in-memory apply order. If
    /// that append fails, the session is torn down rather than left
    /// holding a mutation the log never acknowledged (recovery restores it
    /// at its acked prefix).
    fn step_session<T>(
        &self,
        id: SessionId,
        f: impl FnOnce(&mut LiveSession) -> Result<T, CoreError>,
        event: impl FnOnce(&T, u32) -> Option<WalEvent>,
    ) -> Result<(usize, Result<T, CoreError>, PolicyKind), ServiceError> {
        let (shard_k, local, slot_arc) = self.locate(id)?;
        let shard = &self.shards[shard_k];
        let mut slot = slot_arc.lock().expect("slot lock poisoned");
        if slot.generation != id.generation {
            return Err(ServiceError::UnknownSession(id));
        }
        let session = slot
            .session
            .as_mut()
            .ok_or(ServiceError::UnknownSession(id))?;
        let kind = session.kind;
        let now = self.tick();
        session.last_touch = now;
        self.touch_idle(shard, local, id.generation, now);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if matches!(failpoints::hit("engine.policy"), Some(FaultAction::Panic)) {
                panic!("injected policy panic");
            }
            f(slot.session.as_mut().expect("checked above"))
        }));
        match outcome {
            Ok(result) => {
                if let Ok(value) = &result {
                    if let Some(ev) = event(value, local) {
                        if let Some(wal) = &shard.wal {
                            if let Err(e) = wal.append(&ev) {
                                // The in-memory apply outran the log, and a
                                // degraded engine keeps serving
                                // next_question — so the unacknowledged
                                // mutation must not stay visible, or live
                                // reads would diverge from what recovery
                                // replays. Tear the session down (the
                                // mutated instance is discarded); recovery
                                // resurrects it at its acknowledged prefix.
                                slot.generation = slot.generation.wrapping_add(1);
                                let torn = slot.session.take();
                                drop(slot);
                                drop(torn);
                                self.release_slot(shard, local);
                                shard.counters.errored.fetch_add(1, Ordering::Relaxed);
                                return Err(e);
                            }
                        }
                    }
                }
                Ok((shard_k, result, kind))
            }
            Err(_) => self.quarantine(shard_k, local, slot),
        }
    }

    /// Tears down the session in `slot` after its policy panicked: the
    /// instance is discarded (its internal state is unknowable — it must
    /// never re-enter the pool), the slot generation advances so the stale
    /// id is rejected, and the retirement is logged best-effort so recovery
    /// does not replay the session into the same deterministic panic.
    fn quarantine<T>(
        &self,
        shard_k: usize,
        local: u32,
        mut slot: std::sync::MutexGuard<'_, Slot>,
    ) -> Result<T, ServiceError> {
        let shard = &self.shards[shard_k];
        let generation = slot.generation;
        slot.generation = generation.wrapping_add(1);
        let quarantined = slot.session.take();
        drop(slot);
        if let Some(wal) = &shard.wal {
            wal.append_best_effort(&WalEvent::Cancelled {
                index: local,
                generation,
            });
        }
        drop(quarantined);
        self.release_slot(shard, local);
        shard.counters.panicked.fetch_add(1, Ordering::Relaxed);
        Err(ServiceError::PolicyPanicked)
    }

    /// Tears down the session behind `id`, returning its shard, kind and
    /// serving tier for the caller's telemetry record.
    fn remove(
        &self,
        id: SessionId,
        how: Removal,
    ) -> Result<(usize, PolicyKind, telemetry::Tier), ServiceError> {
        let (shard_k, local, slot_arc) = self.locate(id)?;
        let shard = &self.shards[shard_k];
        let session = {
            let mut slot = slot_arc.lock().expect("slot lock poisoned");
            if slot.generation != id.generation || slot.session.is_none() {
                return Err(ServiceError::UnknownSession(id));
            }
            if let Some(wal) = &shard.wal {
                let ev = WalEvent::Cancelled {
                    index: local,
                    generation: id.generation,
                };
                match how {
                    // An explicit cancel is an acknowledgement: it must be
                    // durable, or the session stays live and the caller
                    // sees the durability failure.
                    Removal::Cancelled => wal.append(&ev)?,
                    // Internal teardown (divergence): proceed regardless;
                    // at worst recovery resurrects a session that will
                    // diverge again on its next step.
                    Removal::Errored => wal.append_best_effort(&ev),
                }
            }
            slot.generation = slot.generation.wrapping_add(1);
            slot.session.take().expect("checked above")
        };
        let kind = session.kind;
        let tier = if session.core.is_compiled() {
            telemetry::Tier::Compiled
        } else {
            telemetry::Tier::Live
        };
        session.release_policy();
        self.release_slot(shard, local);
        let counter = match how {
            Removal::Cancelled => &shard.counters.cancelled,
            Removal::Errored => &shard.counters.errored,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        Ok((shard_k, kind, tier))
    }
}

/// Allocates a local slot on `shard`, preferring its free list, and
/// claims one unit of the shard's live count (paired with
/// `release_slot` on every teardown path).
fn allocate_slot(shard: &Shard) -> u32 {
    shard.live.fetch_add(1, Ordering::Relaxed);
    if let Some(i) = shard.free.lock().expect("free list poisoned").pop() {
        return i;
    }
    let mut slots = shard.slots.write().expect("slots lock poisoned");
    let local = u32::try_from(slots.len()).expect("slot count fits u32");
    slots.push(Arc::new(Mutex::new(Slot {
        generation: 0,
        session: None,
    })));
    local
}

fn slot_arc(shard: &Shard, local: u32) -> Arc<Mutex<Slot>> {
    Arc::clone(&shard.slots.read().expect("slots lock poisoned")[local as usize])
}

/// One shard's recovered state, produced off-thread during the parallel
/// phase of [`SearchEngine::recover_with`].
struct ShardParts {
    slots: Vec<Arc<Mutex<Slot>>>,
    free: Vec<u32>,
    idle: BinaryHeap<IdleEntry>,
    live: usize,
    restored: usize,
    failed: usize,
    opened: u64,
    finished: u64,
    cancelled: u64,
    evicted: u64,
    events: usize,
    corruptions: Vec<String>,
    anomalies: Vec<String>,
}

/// Reads and folds one shard's log files, verifying the recorded shard
/// placement against the directory the files actually sit in.
fn fold_shard_logs(
    base: &Path,
    shard_k: usize,
    shard_count: usize,
) -> Result<(ReplayState, usize, Vec<String>), ServiceError> {
    let logs = read_dir_logs(&shard_dir(base, shard_k))?;
    let events = logs.events.len();
    let mut rs = ReplayState::default();
    for event in &logs.events {
        rs.apply(event);
    }
    if let Some(v) = rs.unsupported_version {
        // Fail fast with the real cause: folding on would surface an
        // unrelated "no engine metadata" / missing-record error instead.
        return Err(durability_err(format!(
            "shard-{shard_k}: log is WAL format v{v}, which this build cannot read \
             (it reads v1–v{WAL_VERSION}); refusing to recover"
        )));
    }
    match rs.shard_meta {
        Some((s, k)) if (s as usize, k as usize) != (shard_k, shard_count) => {
            return Err(durability_err(format!(
                "shard-{shard_k}: log records placement shard {s} of {k}, but sits in a \
                 {shard_count}-shard directory — slot indices are shard-local, so replaying a \
                 misplaced log would alias sessions; refusing"
            )));
        }
        None => rs
            .anomalies
            .push("log carries no shard placement metadata".to_owned()),
        Some(_) => {}
    }
    Ok((rs, events, logs.corruptions))
}

/// Restores one shard's sessions from its fold: plan lookup, policy
/// construction, and a deterministic replay of each acknowledged answer
/// history (the expensive part recovery parallelises across shards).
fn restore_shard(
    mut rs: ReplayState,
    events: usize,
    corruptions: Vec<String>,
    plans: &[Arc<PlanEntry>],
    max_queries: Option<u32>,
    tier: CompiledTier,
    track_idle: bool,
) -> ShardParts {
    let mut parts = ShardParts {
        slots: Vec::with_capacity(rs.sessions.len()),
        free: Vec::new(),
        idle: BinaryHeap::new(),
        live: 0,
        restored: 0,
        failed: 0,
        opened: rs.counters.opened,
        finished: rs.counters.finished,
        cancelled: rs.counters.cancelled,
        evicted: rs.counters.evicted,
        events,
        corruptions,
        anomalies: std::mem::take(&mut rs.anomalies),
    };
    for (local, replayed) in rs.sessions.iter_mut().enumerate() {
        let max_gen = rs.max_gen[local];
        match replayed.take() {
            None => {
                // Empty slot: park its generation past every id ever
                // issued here — the highest generation still in the log
                // window, or the snapshot's retirement watermark when
                // compaction trimmed the history — so stale pre-crash
                // handles stay rejected instead of aliasing a future
                // tenant of the slot.
                let parked = max_gen
                    .map_or(0, |g| g.wrapping_add(1))
                    .max(rs.floors[local]);
                parts.slots.push(Arc::new(Mutex::new(Slot {
                    generation: parked,
                    session: None,
                })));
                parts.free.push(local as u32);
            }
            Some(rsess) => match restore_session(plans, &rsess, max_queries, tier) {
                Ok(session) => {
                    parts.slots.push(Arc::new(Mutex::new(Slot {
                        generation: rsess.generation,
                        session: Some(session),
                    })));
                    if track_idle {
                        // Recovered sessions start at touch 0 (the clock
                        // restarts): idle-oldest until touched again.
                        parts
                            .idle
                            .push(Reverse((0, local as u32, rsess.generation)));
                    }
                    parts.live += 1;
                    parts.restored += 1;
                }
                Err(why) => {
                    parts.failed += 1;
                    parts.anomalies.push(format!("slot {local}: {why}"));
                    parts.slots.push(Arc::new(Mutex::new(Slot {
                        generation: rsess.generation.wrapping_add(1),
                        session: None,
                    })));
                    parts.free.push(local as u32);
                }
            },
        }
    }
    parts
}

/// Rebuilds one logged session: plan lookup, policy construction, and a
/// deterministic replay of its acknowledged answers.
fn restore_session(
    plans: &[Arc<PlanEntry>],
    rsess: &ReplaySession,
    max_queries: Option<u32>,
    tier: CompiledTier,
) -> Result<LiveSession, String> {
    let kind = kind_from_code(rsess.kind)
        .ok_or_else(|| format!("unknown policy code {}", rsess.kind.tag))?;
    let plan = plans
        .get(rsess.plan as usize)
        .cloned()
        .ok_or_else(|| format!("references unregistered plan {}", rsess.plan))?;
    // The logged mode bit is advisory: a session tagged compiled returns to
    // the compiled tier when the recovering engine still compiles its plan
    // and the answer history stays inside the flat array; otherwise it is
    // replayed live — the transcript is bit-identical either way.
    if code_is_compiled(rsess.kind) {
        if let Some(tree) = compiled_tree_for(tier, &plan, kind) {
            if let Ok(cursor) = tree.replay(&plan.ctx(), max_queries, &rsess.answers) {
                if !cursor.needs_fallback() {
                    return Ok(LiveSession {
                        plan,
                        plan_index: rsess.plan,
                        kind,
                        core: SessionCore::Compiled { tree, cursor },
                        answers: rsess.answers.clone(),
                        last_touch: 0,
                    });
                }
            }
        }
    }
    let (mut policy, _) = plan.acquire(kind);
    let replayed = catch_unwind(AssertUnwindSafe(|| {
        SessionStepper::replay(policy.as_mut(), &plan.ctx(), max_queries, &rsess.answers)
    }));
    let stepper = match replayed {
        Ok(Ok(s)) => s,
        Ok(Err(e)) => return Err(format!("replay rejected: {e}")),
        Err(_) => return Err("policy panicked during replay; session retired".to_owned()),
    };
    Ok(LiveSession {
        plan,
        plan_index: rsess.plan,
        kind,
        core: SessionCore::Live { policy, stepper },
        answers: rsess.answers.clone(),
        last_touch: 0,
    })
}

impl std::fmt::Debug for SearchEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchEngine")
            .field("live", &self.live_sessions())
            .field("max_sessions", &self.config.max_sessions)
            .field("shards", &self.shards.len())
            .field("durable", &self.shards[0].wal.is_some())
            .field("degraded", &self.is_degraded())
            .finish()
    }
}

/// The inverted-control surface of one session: ask, suspend, answer,
/// finish. A thin, copyable view over ([`SearchEngine`], [`SessionId`]) —
/// drop it freely and [`SearchEngine::session`] reattaches by id.
#[derive(Debug, Clone, Copy)]
pub struct SessionHandle<'e> {
    engine: &'e SearchEngine,
    id: SessionId,
}

impl SessionHandle<'_> {
    /// The durable id: serialise it into your task queue and reattach with
    /// [`SearchEngine::session`] — on the same engine, or on the one
    /// [`SearchEngine::recover`] rebuilt after a crash.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// See [`SearchEngine::next_question`].
    pub fn next_question(&mut self) -> Result<SessionStep, ServiceError> {
        self.engine.next_question(self.id)
    }

    /// See [`SearchEngine::answer`].
    pub fn answer(&mut self, yes: bool) -> Result<(), ServiceError> {
        self.engine.answer(self.id, yes)
    }

    /// See [`SearchEngine::finish`].
    pub fn finish(self) -> Result<SearchOutcome, ServiceError> {
        self.engine.finish(self.id)
    }

    /// See [`SearchEngine::cancel`].
    pub fn cancel(self) -> Result<(), ServiceError> {
        self.engine.cancel(self.id)
    }
}
