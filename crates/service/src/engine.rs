//! The multi-tenant session engine.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use aigs_core::{CoreError, SearchOutcome, SessionStep, SessionStepper};
use aigs_data::wal::{FsyncPolicy, SessionWal, WalEvent, WAL_VERSION};
use aigs_testutil::failpoints::{self, FaultAction};

use crate::durability::{
    durability_err, kind_code, kind_from_code, plan_payload, plan_spec_from_payload, read_dir_logs,
    sync_dir, DurabilityConfig, RecoveryReport, ReplaySession, ReplayState, WalState, ROTATED_FILE,
    SNAPSHOT_FILE, SNAPSHOT_TMP_FILE,
};
use crate::plan::PlanEntry;
use crate::{PlanId, PlanSpec, PolicyKind, ServiceError};

/// Default admission limit of [`EngineConfig`].
pub const DEFAULT_MAX_SESSIONS: usize = 65_536;

/// Default [`EngineConfig::admission_scan_cap`]: how many slots the
/// admission-time idle sweep examines before giving up.
pub const DEFAULT_ADMISSION_SCAN_CAP: usize = 1024;

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Admission limit on concurrently live sessions. Opening past it fails
    /// with [`ServiceError::AtCapacity`] unless idle eviction frees a slot.
    pub max_sessions: usize,
    /// Idle-eviction threshold on the engine's logical clock (every engine
    /// operation is one tick). A session untouched for this many ticks is
    /// evictable by [`SearchEngine::sweep_idle`] — which also runs, capped,
    /// when admission is full. `None` disables eviction: abandoned sessions
    /// then hold their slots until cancelled.
    pub idle_ticks: Option<u64>,
    /// Per-session query cap forwarded to [`SessionStepper::start`] (the
    /// `4·n + 64` safety cap always applies on top).
    pub max_queries: Option<u32>,
    /// How many warm policy instances each (plan, kind) pool retains.
    pub pool_cap: usize,
    /// Hard cap on how many slots the *admission-time* idle sweep scans, so
    /// a refused open against a saturated engine costs O(cap), not
    /// O(`max_sessions`). Successive refusals resume the scan from a
    /// rotating cursor, and an explicit [`SearchEngine::sweep_idle`] still
    /// scans everything.
    pub admission_scan_cap: usize,
    /// Optional write-ahead durability: with `Some`, every acknowledged
    /// mutating operation is logged before success is returned, and
    /// [`SearchEngine::recover`] rebuilds the engine after a crash.
    pub durability: Option<DurabilityConfig>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_sessions: DEFAULT_MAX_SESSIONS,
            idle_ticks: None,
            max_queries: None,
            pool_cap: 64,
            admission_scan_cap: DEFAULT_ADMISSION_SCAN_CAP,
            durability: None,
        }
    }
}

/// Generational handle to one live session. Stale ids (finished, cancelled
/// or evicted sessions, even after slot reuse) are rejected with
/// [`ServiceError::UnknownSession`], never silently routed to a stranger's
/// search. Like [`crate::PlanId`], the id is scoped to the issuing engine,
/// so it cannot alias a session on a sibling engine either — and
/// [`SearchEngine::recover`] restores the engine's identity, so ids issued
/// before a crash remain valid on the recovered engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId {
    engine: u32,
    index: u32,
    generation: u32,
}

/// A point-in-time snapshot of engine activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Currently live (suspended or mid-step) sessions.
    pub live: usize,
    /// High-water mark of `live`.
    pub peak_live: usize,
    /// Sessions successfully opened.
    pub opened: u64,
    /// Sessions finished with an outcome.
    pub finished: u64,
    /// Sessions cancelled by their caller.
    pub cancelled: u64,
    /// Sessions evicted as idle.
    pub evicted: u64,
    /// Sessions torn down by a search error (divergence) plus opens refused
    /// by a policy construction error.
    pub errored: u64,
    /// Sessions quarantined because their policy panicked (the panicking
    /// instance is discarded, never re-pooled).
    pub panicked: u64,
    /// `next_question`/`answer` operations served.
    pub steps: u64,
    /// Session opens served by a warm pooled policy instance (the O(Δ)
    /// journal-reset path) rather than a fresh build.
    pub pool_hits: u64,
    /// WAL records appended over the engine's lifetime (0 with durability
    /// off).
    pub wal_records: u64,
    /// Whether the engine is in degraded (read-mostly) mode after a WAL
    /// failure.
    pub degraded: bool,
}

struct LiveSession {
    plan: Arc<PlanEntry>,
    /// The plan's registration index (what WAL events reference).
    plan_index: u32,
    kind: PolicyKind,
    policy: Box<dyn aigs_core::Policy + Send>,
    stepper: SessionStepper,
    /// The acknowledged answer history — with the plan and kind, the
    /// session's complete durable state (questions re-derive
    /// deterministically on replay).
    answers: Vec<bool>,
    last_touch: u64,
}

struct Slot {
    generation: u32,
    session: Option<LiveSession>,
}

#[derive(Default)]
struct Counters {
    opened: AtomicU64,
    finished: AtomicU64,
    cancelled: AtomicU64,
    evicted: AtomicU64,
    errored: AtomicU64,
    panicked: AtomicU64,
    steps: AtomicU64,
    pool_hits: AtomicU64,
    peak_live: AtomicUsize,
}

enum Removal {
    Cancelled,
    Errored,
}

/// A concurrent, suspendable multi-tenant search engine.
///
/// The engine is `Sync`: share it behind an `Arc` (or plain reference) and
/// drive different sessions from as many threads as you like. Per-session
/// operations lock only that session's slot, so steps on distinct sessions
/// run in parallel; the global locks are touched only by registration,
/// admission and eviction sweeps.
///
/// ### Lifecycle
///
/// [`open_session`](Self::open_session) →
/// ([`next_question`](SessionHandle::next_question) → *ship to oracle,
/// suspend* → [`answer`](SessionHandle::answer))\* →
/// [`finish`](SessionHandle::finish). Sessions that stop answering are
/// reclaimed by idle eviction; sessions whose search errors are torn down
/// individually, returning the [`CoreError`] to their caller only; sessions
/// whose policy *panics* are quarantined the same way (instance discarded,
/// [`ServiceError::PolicyPanicked`] to their caller, everyone else
/// untouched).
///
/// ### Durability
///
/// With [`EngineConfig::durability`] set, acknowledged mutations append to
/// a checksummed write-ahead log before returning, periodic snapshots
/// compact it, and [`recover`](Self::recover) rebuilds the engine from the
/// log — recovered sessions continue with transcripts **bit-identical** to
/// an uncrashed run. If the log itself fails (disk full, I/O error), the
/// engine degrades to read-mostly: the failing call gets
/// [`ServiceError::Durability`], later mutating calls get
/// [`ServiceError::Degraded`], while `next_question`, [`stats`](Self::stats)
/// and existing reads keep working. A session whose *applied* answer could
/// not be logged is torn down (never served in a state the log does not
/// acknowledge); recovery restores it at its acknowledged history.
pub struct SearchEngine {
    config: EngineConfig,
    /// Process-unique nonce baked into every id this engine issues, so a
    /// [`PlanId`]/[`SessionId`] presented to a *different* engine is
    /// rejected instead of aliasing that engine's slot at the same index.
    engine_id: u32,
    plans: RwLock<Vec<Arc<PlanEntry>>>,
    slots: RwLock<Vec<Arc<Mutex<Slot>>>>,
    free: Mutex<Vec<u32>>,
    live: AtomicUsize,
    clock: AtomicU64,
    counters: Counters,
    /// Rotating start position for the capped admission sweep.
    sweep_cursor: AtomicUsize,
    wal: Option<WalState>,
}

/// Issues [`SearchEngine::engine_id`] nonces (process-wide, never zero).
/// [`SearchEngine::recover`] bumps it past recovered ids so later engines
/// cannot collide with a pre-crash engine's identity.
static NEXT_ENGINE_ID: AtomicU32 = AtomicU32::new(1);

impl Default for SearchEngine {
    fn default() -> Self {
        Self::new(EngineConfig::default())
    }
}

impl SearchEngine {
    /// An empty engine with the given limits.
    ///
    /// # Panics
    /// Panics when [`EngineConfig::durability`] is set and the log
    /// directory cannot be initialised; use [`try_new`](Self::try_new) to
    /// handle that fallibly.
    pub fn new(config: EngineConfig) -> Self {
        Self::try_new(config).expect("durability init failed; use SearchEngine::try_new")
    }

    /// An empty engine with the given limits, surfacing durability-setup
    /// failures as [`ServiceError::Durability`].
    ///
    /// A fresh engine **owns** its log directory: stale WAL/snapshot files
    /// from a previous tenant are removed so a later recovery cannot splice
    /// two engines' histories. To resume from an existing log, use
    /// [`recover`](Self::recover) instead.
    pub fn try_new(config: EngineConfig) -> Result<Self, ServiceError> {
        let engine_id = NEXT_ENGINE_ID.fetch_add(1, Ordering::Relaxed);
        let wal = match &config.durability {
            None => None,
            Some(d) => Some(WalState::create(d.clone(), engine_id, true)?),
        };
        Ok(SearchEngine {
            config,
            engine_id,
            plans: RwLock::new(Vec::new()),
            slots: RwLock::new(Vec::new()),
            free: Mutex::new(Vec::new()),
            live: AtomicUsize::new(0),
            clock: AtomicU64::new(0),
            counters: Counters::default(),
            sweep_cursor: AtomicUsize::new(0),
            wal: None,
        }
        .with_wal(wal))
    }

    fn with_wal(mut self, wal: Option<WalState>) -> Self {
        self.wal = wal;
        self
    }

    /// Rebuilds an engine from the write-ahead log in `dir` with default
    /// limits. See [`recover_with`](Self::recover_with).
    pub fn recover(dir: impl Into<PathBuf>) -> Result<(Self, RecoveryReport), ServiceError> {
        let config = EngineConfig {
            durability: Some(DurabilityConfig::new(dir)),
            ..EngineConfig::default()
        };
        Self::recover_with(config)
    }

    /// Rebuilds an engine from the write-ahead log named by
    /// `config.durability` (required).
    ///
    /// Replays every intact event — snapshot first, then the tail(s) —
    /// through the idempotent fold, rebuilds each plan's artifacts
    /// bit-identically, and restores every acknowledged live session by
    /// replaying its answer history through a fresh
    /// [`SessionStepper`]: because policies are deterministic, a recovered
    /// session's continuation transcript is **bit-identical** to the
    /// uncrashed run's. The engine's identity is restored too, so
    /// [`SessionId`]s/[`PlanId`]s issued before the crash keep working.
    ///
    /// Torn log tails (the signature of a mid-append crash) are tolerated
    /// and reported in the [`RecoveryReport`]; individually unrestorable
    /// sessions (e.g. a policy that deterministically panics mid-replay)
    /// are retired and counted rather than poisoning the engine. After a
    /// successful recovery the directory is compacted to a fresh
    /// snapshot + empty tail.
    pub fn recover_with(config: EngineConfig) -> Result<(Self, RecoveryReport), ServiceError> {
        let Some(durability) = config.durability.clone() else {
            return Err(durability_err(
                "recover_with requires EngineConfig::durability",
            ));
        };
        let logs = read_dir_logs(&durability.dir)?;
        let mut report = RecoveryReport {
            events: logs.events.len(),
            corruptions: logs.corruptions,
            ..RecoveryReport::default()
        };
        let mut rs = ReplayState::default();
        for event in &logs.events {
            rs.apply(event);
        }
        report.anomalies = std::mem::take(&mut rs.anomalies);
        let engine_id = rs
            .engine_id
            .ok_or_else(|| durability_err("log contains no engine metadata"))?;
        // Keep later same-process engines from colliding with this identity.
        NEXT_ENGINE_ID.fetch_max(engine_id.wrapping_add(1), Ordering::Relaxed);

        // Plans must be gap-free: sessions reference them by index.
        let mut plans = Vec::with_capacity(rs.plans.len());
        for (i, payload) in rs.plans.iter().enumerate() {
            let Some(payload) = payload else {
                return Err(durability_err(format!(
                    "plan {i} is missing from the log (corrupt snapshot?)"
                )));
            };
            let spec = plan_spec_from_payload(payload)?;
            plans.push(Arc::new(PlanEntry::build(spec, config.pool_cap)?));
        }
        report.plans = plans.len();

        let mut slots = Vec::with_capacity(rs.sessions.len());
        let mut free = Vec::new();
        let mut live = 0usize;
        for (index, replayed) in rs.sessions.iter_mut().enumerate() {
            let max_gen = rs.max_gen[index];
            match replayed.take() {
                None => {
                    // Empty slot: park its generation past every id ever
                    // issued here — the highest generation still in the log
                    // window, or the snapshot's retirement watermark when
                    // compaction trimmed the history — so stale pre-crash
                    // handles stay rejected instead of aliasing a future
                    // tenant of the slot.
                    let parked = max_gen
                        .map_or(0, |g| g.wrapping_add(1))
                        .max(rs.floors[index]);
                    slots.push(Arc::new(Mutex::new(Slot {
                        generation: parked,
                        session: None,
                    })));
                    free.push(index as u32);
                }
                Some(rsess) => match Self::restore_session(&plans, &rsess, config.max_queries) {
                    Ok(session) => {
                        slots.push(Arc::new(Mutex::new(Slot {
                            generation: rsess.generation,
                            session: Some(session),
                        })));
                        live += 1;
                        report.sessions += 1;
                    }
                    Err(why) => {
                        report.sessions_failed += 1;
                        report.anomalies.push(format!("slot {index}: {why}"));
                        slots.push(Arc::new(Mutex::new(Slot {
                            generation: rsess.generation.wrapping_add(1),
                            session: None,
                        })));
                        free.push(index as u32);
                    }
                },
            }
        }

        let counters = Counters::default();
        counters.opened.store(rs.counters.opened, Ordering::Relaxed);
        counters
            .finished
            .store(rs.counters.finished, Ordering::Relaxed);
        counters
            .cancelled
            .store(rs.counters.cancelled, Ordering::Relaxed);
        counters
            .evicted
            .store(rs.counters.evicted, Ordering::Relaxed);
        counters.peak_live.store(live, Ordering::Relaxed);

        let engine = SearchEngine {
            config,
            engine_id,
            plans: RwLock::new(plans),
            slots: RwLock::new(slots),
            free: Mutex::new(free),
            live: AtomicUsize::new(live),
            clock: AtomicU64::new(0),
            counters,
            sweep_cursor: AtomicUsize::new(0),
            wal: None,
        };

        // Re-establish durability deterministically: snapshot the recovered
        // state, publish it, then open a fresh tail — whatever file set the
        // crash left behind is superseded and cleaned up.
        let tmp = durability.dir.join(SNAPSHOT_TMP_FILE);
        engine.write_snapshot(&tmp)?;
        std::fs::rename(&tmp, durability.dir.join(SNAPSHOT_FILE)).map_err(durability_err)?;
        // The rename must be durable before the fresh tail below truncates
        // the old one: a crash persisting the truncation without the
        // rename would drop acknowledged records.
        sync_dir(&durability.dir)?;
        let _ = std::fs::remove_file(durability.dir.join(ROTATED_FILE));
        let wal = WalState::create(durability, engine_id, false)?;
        Ok((engine.with_wal(Some(wal)), report))
    }

    /// Rebuilds one logged session: plan lookup, policy construction, and a
    /// deterministic replay of its acknowledged answers.
    fn restore_session(
        plans: &[Arc<PlanEntry>],
        rsess: &ReplaySession,
        max_queries: Option<u32>,
    ) -> Result<LiveSession, String> {
        let kind = kind_from_code(rsess.kind)
            .ok_or_else(|| format!("unknown policy code {}", rsess.kind.tag))?;
        let plan = plans
            .get(rsess.plan as usize)
            .cloned()
            .ok_or_else(|| format!("references unregistered plan {}", rsess.plan))?;
        let (mut policy, _) = plan.acquire(kind);
        let replayed = catch_unwind(AssertUnwindSafe(|| {
            SessionStepper::replay(policy.as_mut(), &plan.ctx(), max_queries, &rsess.answers)
        }));
        let stepper = match replayed {
            Ok(Ok(s)) => s,
            Ok(Err(e)) => return Err(format!("replay rejected: {e}")),
            Err(_) => return Err("policy panicked during replay; session retired".to_owned()),
        };
        Ok(LiveSession {
            plan,
            plan_index: rsess.plan,
            kind,
            policy,
            stepper,
            answers: rsess.answers.clone(),
            last_touch: 0,
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Registers a plan (hierarchy + distribution + prices + backend
    /// choice), building its shared reachability index once. Fails with
    /// [`ServiceError::Core`] when the spec is inconsistent (e.g. weight
    /// vector length mismatch). With durability on, the full plan payload
    /// is logged before the id is returned, so recovery is self-contained.
    pub fn register_plan(&self, spec: PlanSpec) -> Result<PlanId, ServiceError> {
        self.check_active()?;
        let entry = Arc::new(PlanEntry::build(spec, self.config.pool_cap)?);
        let mut plans = self.plans.write().expect("plans lock poisoned");
        let index = u32::try_from(plans.len()).expect("plan count fits u32");
        if let Some(wal) = &self.wal {
            let (dag, weights, costs, reach) = entry.artifacts();
            wal.append(&WalEvent::PlanRegistered {
                plan: index,
                payload: plan_payload(dag, weights, costs, reach),
            })?;
        }
        plans.push(entry);
        Ok(PlanId {
            engine: self.engine_id,
            index,
        })
    }

    /// Opens a suspended session for `kind` on `plan`.
    ///
    /// Policy instances come from the plan's pool when warm (journal reset,
    /// O(Δ)); construction/reset failures — an oversized
    /// [`PolicyKind::Optimal`] instance, [`PolicyKind::GreedyTree`] on a
    /// DAG — surface as [`ServiceError::Core`] to this caller alone. At the
    /// admission limit a capped idle-eviction sweep runs first; if nothing
    /// is reclaimable the open fails with [`ServiceError::AtCapacity`],
    /// whose `retryable`/`oldest_idle` fields tell the caller whether and
    /// when backing off can help.
    pub fn open_session(
        &self,
        plan: PlanId,
        kind: PolicyKind,
    ) -> Result<SessionHandle<'_>, ServiceError> {
        self.check_active()?;
        let now = self.tick();
        if plan.engine != self.engine_id {
            return Err(ServiceError::UnknownPlan(plan));
        }
        let plan_entry = {
            let plans = self.plans.read().expect("plans lock poisoned");
            plans
                .get(plan.index as usize)
                .cloned()
                .ok_or(ServiceError::UnknownPlan(plan))?
        };

        // Reserve a live slot (sweeping up to `admission_scan_cap` slots
        // for idle sessions when full).
        if !self.reserve_live() {
            let (_evicted, oldest_idle) = self.sweep_for_admission();
            if !self.reserve_live() {
                return Err(ServiceError::AtCapacity {
                    live: self.live.load(Ordering::Relaxed),
                    limit: self.config.max_sessions,
                    retryable: self.config.idle_ticks.is_some(),
                    oldest_idle,
                });
            }
        }

        let (mut policy, pool_hit) = plan_entry.acquire(kind);
        let started = catch_unwind(AssertUnwindSafe(|| {
            if matches!(failpoints::hit("engine.policy"), Some(FaultAction::Panic)) {
                panic!("injected policy panic");
            }
            SessionStepper::start(policy.as_mut(), &plan_entry.ctx(), self.config.max_queries)
        }));
        let stepper = match started {
            Ok(Ok(s)) => s,
            Ok(Err(e)) => {
                // A failed reset leaves the instance in an unknown state:
                // drop it rather than re-pool it, release the reservation,
                // and hand the error to this caller only.
                self.live.fetch_sub(1, Ordering::Relaxed);
                self.counters.errored.fetch_add(1, Ordering::Relaxed);
                return Err(e.into());
            }
            Err(_) => {
                // Panic during construction: quarantine the instance.
                self.live.fetch_sub(1, Ordering::Relaxed);
                self.counters.panicked.fetch_add(1, Ordering::Relaxed);
                return Err(ServiceError::PolicyPanicked);
            }
        };
        if pool_hit {
            self.counters.pool_hits.fetch_add(1, Ordering::Relaxed);
        }

        let session = LiveSession {
            plan: plan_entry,
            plan_index: plan.index,
            kind,
            policy,
            stepper,
            answers: Vec::new(),
            last_touch: now,
        };
        let index = self.allocate_slot();
        let slot_arc = self.slot_arc(index);
        let generation = {
            let mut slot = slot_arc.lock().expect("slot lock poisoned");
            debug_assert!(slot.session.is_none(), "free list handed out a live slot");
            // Log before publishing: on failure the caller never saw an id,
            // so nothing durable or visible changed.
            if let Some(wal) = &self.wal {
                if let Err(e) = wal.append(&WalEvent::SessionOpened {
                    index,
                    generation: slot.generation,
                    plan: plan.index,
                    kind: kind_code(kind),
                }) {
                    drop(slot);
                    self.release_slot(index);
                    self.counters.errored.fetch_add(1, Ordering::Relaxed);
                    return Err(e);
                }
            }
            slot.session = Some(session);
            slot.generation
        };
        self.counters.opened.fetch_add(1, Ordering::Relaxed);
        self.maybe_autocompact();
        Ok(SessionHandle {
            engine: self,
            id: SessionId {
                engine: self.engine_id,
                index,
                generation,
            },
        })
    }

    /// Reattaches to a live session by id (e.g. after the id travelled
    /// through a task queue). The id is validated lazily by the next
    /// operation.
    pub fn session(&self, id: SessionId) -> SessionHandle<'_> {
        SessionHandle { engine: self, id }
    }

    /// What session `id` needs next — a question to forward to its oracle,
    /// or its resolved target. A session that exhausts its query cap is
    /// torn down (its policy instance returns to the pool) and
    /// [`CoreError::Diverged`] is returned to this caller; every other
    /// session is untouched. Works in degraded mode: question derivation is
    /// deterministic, so it never needs the log.
    pub fn next_question(&self, id: SessionId) -> Result<SessionStep, ServiceError> {
        let step = self.step_session(
            id,
            |s| {
                let LiveSession {
                    plan,
                    policy,
                    stepper,
                    ..
                } = s;
                stepper.next_question(policy.as_mut(), &plan.ctx())
            },
            |_, _| None,
        )?;
        self.counters.steps.fetch_add(1, Ordering::Relaxed);
        match step {
            Ok(step) => Ok(step),
            Err(e @ CoreError::Diverged { .. }) => {
                // The search ran out of budget: reclaim the slot. The policy
                // itself is healthy (divergence is a budget condition), so it
                // may re-enter the pool.
                let _ = self.remove(id, Removal::Errored);
                Err(e.into())
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Feeds the oracle's answer for the pending question of session `id`.
    /// Answering with no question outstanding is a recoverable protocol
    /// error ([`CoreError::SessionMisuse`]); the session stays live. With
    /// durability on, the answer is logged (under the session's lock, so
    /// log order matches apply order) before the call returns — a
    /// [`ServiceError::Durability`] return means the answer was **not**
    /// durably acknowledged: the engine has degraded and the session is
    /// torn down (its in-memory state already held the unlogged answer, so
    /// leaving it live would let degraded-mode reads diverge from what
    /// recovery replays). [`SearchEngine::recover`] resurrects it at its
    /// acknowledged answer history.
    pub fn answer(&self, id: SessionId, yes: bool) -> Result<(), ServiceError> {
        self.check_active()?;
        let fed = self.step_session(
            id,
            |s| {
                let LiveSession {
                    plan,
                    policy,
                    stepper,
                    answers,
                    ..
                } = s;
                stepper.answer(policy.as_mut(), &plan.ctx(), yes)?;
                answers.push(yes);
                Ok(u32::try_from(answers.len() - 1).expect("answer count fits u32"))
            },
            |seq, _| {
                Some(WalEvent::Answered {
                    index: id.index,
                    generation: id.generation,
                    seq: *seq,
                    yes,
                })
            },
        )?;
        self.counters.steps.fetch_add(1, Ordering::Relaxed);
        fed.map_err(ServiceError::from)?;
        self.maybe_autocompact();
        Ok(())
    }

    /// Completes a resolved session: returns its [`SearchOutcome`], frees
    /// the slot and returns the policy instance to the plan's pool. While
    /// unresolved this errs with [`CoreError::SessionMisuse`] and the
    /// session stays live — as it does if the completion cannot be durably
    /// logged ([`ServiceError::Durability`]).
    pub fn finish(&self, id: SessionId) -> Result<SearchOutcome, ServiceError> {
        self.check_active()?;
        // Probe resolution and take the session under ONE slot-lock
        // acquisition: a probe-then-remove pair would let a concurrent
        // cancel/evict slip between the two and discard the outcome.
        let slot_arc = self.lookup_slot(id)?;
        let (outcome, session) = {
            let mut slot = slot_arc.lock().expect("slot lock poisoned");
            if slot.generation != id.generation {
                return Err(ServiceError::UnknownSession(id));
            }
            let session = slot
                .session
                .as_mut()
                .ok_or(ServiceError::UnknownSession(id))?;
            session.last_touch = self.tick();
            let finished = catch_unwind(AssertUnwindSafe(|| {
                if matches!(failpoints::hit("engine.policy"), Some(FaultAction::Panic)) {
                    panic!("injected policy panic");
                }
                session.stepper.finish(session.policy.as_ref())
            }));
            let outcome = match finished {
                Ok(Ok(outcome)) => outcome,
                Ok(Err(e)) => return Err(e.into()),
                Err(_) => return self.quarantine(slot, id),
            };
            if let Some(wal) = &self.wal {
                // Ack durably before removing: on failure the session stays
                // live (and recoverable) while the error propagates.
                wal.append(&WalEvent::Finished {
                    index: id.index,
                    generation: id.generation,
                })?;
            }
            slot.generation = slot.generation.wrapping_add(1);
            (outcome, slot.session.take().expect("checked above"))
        };
        session.plan.release(session.kind, session.policy);
        self.release_slot(id.index);
        self.counters.finished.fetch_add(1, Ordering::Relaxed);
        self.maybe_autocompact();
        Ok(outcome)
    }

    /// Discards a session regardless of progress, reclaiming its slot.
    pub fn cancel(&self, id: SessionId) -> Result<(), ServiceError> {
        self.check_active()?;
        self.remove(id, Removal::Cancelled)
    }

    /// Evicts every session idle for at least the configured
    /// [`EngineConfig::idle_ticks`], returning how many were reclaimed.
    /// No-op (returns 0) when eviction is disabled or the engine is
    /// degraded (a degraded engine must not silently drop recoverable
    /// sessions).
    ///
    /// This explicit sweep scans every slot; the sweep that runs
    /// automatically when admission is full is capped at
    /// [`EngineConfig::admission_scan_cap`] slots instead.
    pub fn sweep_idle(&self) -> usize {
        let Some(max_idle) = self.config.idle_ticks else {
            return 0;
        };
        if self.is_degraded() {
            return 0;
        }
        let now = self.clock.load(Ordering::Relaxed);
        let slots: Vec<(u32, Arc<Mutex<Slot>>)> = {
            let slots = self.slots.read().expect("slots lock poisoned");
            slots
                .iter()
                .enumerate()
                .map(|(i, s)| (i as u32, Arc::clone(s)))
                .collect()
        };
        let mut evicted = 0;
        for (index, slot_arc) in slots {
            if self.try_evict(index, &slot_arc, now, max_idle) {
                evicted += 1;
            }
        }
        evicted
    }

    /// Currently live sessions.
    pub fn live_sessions(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// A snapshot of the activity counters. After a recovery, the durable
    /// lifecycle counters (`opened`/`finished`/`cancelled`/`evicted`) are
    /// restored from the surviving log window — exact until a compaction
    /// trims retired sessions' history; the purely operational ones
    /// (`steps`, `pool_hits`, `errored`, `panicked`) restart from zero.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            live: self.live.load(Ordering::Relaxed),
            peak_live: self.counters.peak_live.load(Ordering::Relaxed),
            opened: self.counters.opened.load(Ordering::Relaxed),
            finished: self.counters.finished.load(Ordering::Relaxed),
            cancelled: self.counters.cancelled.load(Ordering::Relaxed),
            evicted: self.counters.evicted.load(Ordering::Relaxed),
            errored: self.counters.errored.load(Ordering::Relaxed),
            panicked: self.counters.panicked.load(Ordering::Relaxed),
            steps: self.counters.steps.load(Ordering::Relaxed),
            pool_hits: self.counters.pool_hits.load(Ordering::Relaxed),
            wal_records: self
                .wal
                .as_ref()
                .map_or(0, |w| w.total_records.load(Ordering::Relaxed)),
            degraded: self.is_degraded(),
        }
    }

    /// Compacts the write-ahead log now: rotates the tail, snapshots the
    /// live state, and atomically publishes the snapshot. No-op with
    /// durability off or when another compaction is already running; fails
    /// with [`ServiceError::Degraded`] on a degraded engine. Runs
    /// automatically when the tail exceeds
    /// [`DurabilityConfig::snapshot_every`] records.
    pub fn compact(&self) -> Result<(), ServiceError> {
        let Some(wal) = &self.wal else {
            return Ok(());
        };
        if wal.degraded.load(Ordering::Relaxed) {
            return Err(ServiceError::Degraded);
        }
        if wal.compacting.swap(true, Ordering::SeqCst) {
            return Ok(());
        }
        let result = (|| {
            wal.rotate(self.engine_id)?;
            let tmp = wal.config.dir.join(SNAPSHOT_TMP_FILE);
            self.write_snapshot(&tmp)?;
            wal.publish_snapshot()
        })();
        wal.compacting.store(false, Ordering::SeqCst);
        result
    }

    /// Forces buffered WAL records to stable storage (useful before a
    /// graceful shutdown when fsync batching is on). No-op with durability
    /// off.
    pub fn sync_wal(&self) -> Result<(), ServiceError> {
        match &self.wal {
            None => Ok(()),
            Some(wal) => wal.sync(),
        }
    }

    // ---- internals ----------------------------------------------------

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn is_degraded(&self) -> bool {
        self.wal
            .as_ref()
            .is_some_and(|w| w.degraded.load(Ordering::Relaxed))
    }

    /// Gate for mutating operations: a degraded engine is read-mostly.
    fn check_active(&self) -> Result<(), ServiceError> {
        if self.is_degraded() {
            return Err(ServiceError::Degraded);
        }
        Ok(())
    }

    fn maybe_autocompact(&self) {
        let Some(wal) = &self.wal else { return };
        let Some(limit) = wal.config.snapshot_every else {
            return;
        };
        if !wal.degraded.load(Ordering::Relaxed)
            && wal.tail_records.load(Ordering::Relaxed) >= limit
        {
            // Failures surface on the next explicit compact/mutation; the
            // triggering operation itself already succeeded durably.
            let _ = self.compact();
        }
    }

    /// Writes a compacted WAL (engine meta + plans + live sessions) to
    /// `path` and fsyncs it. Used by both compaction and post-recovery
    /// re-initialisation; never touches the shared tail writer, so it needs
    /// no lock ordering against appends beyond the per-slot locks.
    fn write_snapshot(&self, path: &Path) -> Result<(), ServiceError> {
        let mut snap = SessionWal::create(path, FsyncPolicy::Never).map_err(durability_err)?;
        snap.append_buffered(&WalEvent::EngineMeta {
            version: WAL_VERSION,
            engine_id: self.engine_id,
        })
        .map_err(durability_err)?;
        {
            let plans = self.plans.read().expect("plans lock poisoned");
            for (i, entry) in plans.iter().enumerate() {
                let (dag, weights, costs, reach) = entry.artifacts();
                snap.append_buffered(&WalEvent::PlanRegistered {
                    plan: i as u32,
                    payload: plan_payload(dag, weights, costs, reach),
                })
                .map_err(durability_err)?;
            }
        }
        let slots: Vec<(u32, Arc<Mutex<Slot>>)> = {
            let slots = self.slots.read().expect("slots lock poisoned");
            slots
                .iter()
                .enumerate()
                .map(|(i, s)| (i as u32, Arc::clone(s)))
                .collect()
        };
        for (index, slot_arc) in slots {
            // Capture each session atomically under its lock; concurrent
            // later events land in the rotated tail and replay idempotently
            // on top (duplicates skip by sequence number).
            let slot = slot_arc.lock().expect("slot lock poisoned");
            let Some(s) = slot.session.as_ref() else {
                // Empty slot: its retire tombstones are being compacted
                // away, so persist the generation as a watermark — recovery
                // must park the slot here, not rebuild it at generation 0
                // where a stale pre-crash id would alias the next tenant.
                if slot.generation > 0 {
                    snap.append_buffered(&WalEvent::SlotRetired {
                        index,
                        generation: slot.generation,
                    })
                    .map_err(durability_err)?;
                }
                continue;
            };
            snap.append_buffered(&WalEvent::SessionOpened {
                index,
                generation: slot.generation,
                plan: s.plan_index,
                kind: kind_code(s.kind),
            })
            .map_err(durability_err)?;
            for (seq, &yes) in s.answers.iter().enumerate() {
                snap.append_buffered(&WalEvent::Answered {
                    index,
                    generation: slot.generation,
                    seq: seq as u32,
                    yes,
                })
                .map_err(durability_err)?;
            }
        }
        snap.sync().map_err(durability_err)?;
        Ok(())
    }

    /// Atomically claims one unit of live capacity; callers must release it
    /// (decrement) on every failure path.
    fn reserve_live(&self) -> bool {
        match self
            .live
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |l| {
                (l < self.config.max_sessions).then_some(l + 1)
            }) {
            Ok(prev) => {
                // Record the claimed value, not a re-load: a concurrent
                // release between the claim and a load would hide the peak.
                self.counters
                    .peak_live
                    .fetch_max(prev + 1, Ordering::Relaxed);
                true
            }
            Err(_) => false,
        }
    }

    /// The capped admission-time sweep: scans at most
    /// [`EngineConfig::admission_scan_cap`] slots from a rotating cursor,
    /// evicting idle sessions and reporting the oldest idle age seen (the
    /// caller's backoff hint).
    fn sweep_for_admission(&self) -> (usize, Option<u64>) {
        let Some(max_idle) = self.config.idle_ticks else {
            return (0, None);
        };
        if self.is_degraded() {
            return (0, None);
        }
        let now = self.clock.load(Ordering::Relaxed);
        let scan: Vec<(u32, Arc<Mutex<Slot>>)> = {
            let slots = self.slots.read().expect("slots lock poisoned");
            let len = slots.len();
            if len == 0 {
                return (0, None);
            }
            let cap = self.config.admission_scan_cap.clamp(1, len);
            let start = self.sweep_cursor.fetch_add(cap, Ordering::Relaxed) % len;
            (0..cap)
                .map(|k| {
                    let i = (start + k) % len;
                    (i as u32, Arc::clone(&slots[i]))
                })
                .collect()
        };
        let mut evicted = 0;
        let mut oldest: Option<u64> = None;
        for (index, slot_arc) in &scan {
            {
                let slot = slot_arc.lock().expect("slot lock poisoned");
                if let Some(s) = slot.session.as_ref() {
                    let age = now.saturating_sub(s.last_touch);
                    oldest = Some(oldest.map_or(age, |o| o.max(age)));
                }
            }
            if self.try_evict(*index, slot_arc, now, max_idle) {
                evicted += 1;
            }
        }
        (evicted, oldest)
    }

    /// Evicts the session in `slot_arc` if it has idled past `max_idle`.
    /// The eviction event is logged best-effort under the slot lock (an
    /// unlogged eviction merely resurrects the session on recovery).
    fn try_evict(&self, index: u32, slot_arc: &Arc<Mutex<Slot>>, now: u64, max_idle: u64) -> bool {
        let reclaimed = {
            let mut slot = slot_arc.lock().expect("slot lock poisoned");
            let idle = slot
                .session
                .as_ref()
                .is_some_and(|s| now.saturating_sub(s.last_touch) >= max_idle);
            if idle {
                if let Some(wal) = &self.wal {
                    wal.append_best_effort(&WalEvent::Evicted {
                        index,
                        generation: slot.generation,
                    });
                }
                slot.generation = slot.generation.wrapping_add(1);
                slot.session.take()
            } else {
                None
            }
        };
        match reclaimed {
            Some(s) => {
                s.plan.release(s.kind, s.policy);
                self.release_slot(index);
                self.counters.evicted.fetch_add(1, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    fn allocate_slot(&self) -> u32 {
        if let Some(i) = self.free.lock().expect("free list poisoned").pop() {
            return i;
        }
        let mut slots = self.slots.write().expect("slots lock poisoned");
        let index = u32::try_from(slots.len()).expect("slot count fits u32");
        slots.push(Arc::new(Mutex::new(Slot {
            generation: 0,
            session: None,
        })));
        index
    }

    fn release_slot(&self, index: u32) {
        self.live.fetch_sub(1, Ordering::Relaxed);
        self.free.lock().expect("free list poisoned").push(index);
    }

    fn slot_arc(&self, index: u32) -> Arc<Mutex<Slot>> {
        Arc::clone(&self.slots.read().expect("slots lock poisoned")[index as usize])
    }

    /// Resolves `id` to its slot, rejecting ids issued by another engine.
    fn lookup_slot(&self, id: SessionId) -> Result<Arc<Mutex<Slot>>, ServiceError> {
        if id.engine != self.engine_id {
            return Err(ServiceError::UnknownSession(id));
        }
        let slots = self.slots.read().expect("slots lock poisoned");
        slots
            .get(id.index as usize)
            .cloned()
            .ok_or(ServiceError::UnknownSession(id))
    }

    /// Runs `f` — a step that calls into the session's policy — on the live
    /// session behind `id`, touching its idle clock.
    ///
    /// The policy call is wrapped in `catch_unwind`: a panicking policy
    /// quarantines **only its own session** (see [`Self::quarantine`]) and
    /// surfaces [`ServiceError::PolicyPanicked`] to this caller; every
    /// other session, and the engine itself, keeps serving. On success,
    /// `event` may produce a WAL record which is appended while the slot
    /// lock is still held — guaranteeing the log's per-session order
    /// matches the in-memory apply order. If that append fails, the
    /// session is torn down rather than left holding a mutation the log
    /// never acknowledged (recovery restores it at its acked prefix).
    fn step_session<T>(
        &self,
        id: SessionId,
        f: impl FnOnce(&mut LiveSession) -> Result<T, CoreError>,
        event: impl FnOnce(&T, &LiveSession) -> Option<WalEvent>,
    ) -> Result<Result<T, CoreError>, ServiceError> {
        let slot_arc = self.lookup_slot(id)?;
        let mut slot = slot_arc.lock().expect("slot lock poisoned");
        if slot.generation != id.generation {
            return Err(ServiceError::UnknownSession(id));
        }
        let session = slot
            .session
            .as_mut()
            .ok_or(ServiceError::UnknownSession(id))?;
        session.last_touch = self.tick();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if matches!(failpoints::hit("engine.policy"), Some(FaultAction::Panic)) {
                panic!("injected policy panic");
            }
            f(session)
        }));
        match outcome {
            Ok(result) => {
                if let Ok(value) = &result {
                    let ev = {
                        let session = slot
                            .session
                            .as_ref()
                            .expect("session vanished under its slot lock");
                        event(value, session)
                    };
                    if let Some(ev) = ev {
                        if let Some(wal) = &self.wal {
                            if let Err(e) = wal.append(&ev) {
                                // The in-memory apply outran the log, and a
                                // degraded engine keeps serving
                                // next_question — so the unacknowledged
                                // mutation must not stay visible, or live
                                // reads would diverge from what recovery
                                // replays. Tear the session down (the
                                // mutated instance is discarded); recovery
                                // resurrects it at its acknowledged prefix.
                                slot.generation = slot.generation.wrapping_add(1);
                                let torn = slot.session.take();
                                drop(slot);
                                drop(torn);
                                self.release_slot(id.index);
                                self.counters.errored.fetch_add(1, Ordering::Relaxed);
                                return Err(e);
                            }
                        }
                    }
                }
                Ok(result)
            }
            Err(_) => self.quarantine(slot, id),
        }
    }

    /// Tears down the session in `slot` after its policy panicked: the
    /// instance is discarded (its internal state is unknowable — it must
    /// never re-enter the pool), the slot generation advances so the stale
    /// id is rejected, and the retirement is logged best-effort so recovery
    /// does not replay the session into the same deterministic panic.
    fn quarantine<T>(
        &self,
        mut slot: std::sync::MutexGuard<'_, Slot>,
        id: SessionId,
    ) -> Result<T, ServiceError> {
        let generation = slot.generation;
        slot.generation = generation.wrapping_add(1);
        let quarantined = slot.session.take();
        drop(slot);
        if let Some(wal) = &self.wal {
            wal.append_best_effort(&WalEvent::Cancelled {
                index: id.index,
                generation,
            });
        }
        drop(quarantined);
        self.release_slot(id.index);
        self.counters.panicked.fetch_add(1, Ordering::Relaxed);
        Err(ServiceError::PolicyPanicked)
    }

    fn remove(&self, id: SessionId, how: Removal) -> Result<(), ServiceError> {
        let slot_arc = self.lookup_slot(id)?;
        let session = {
            let mut slot = slot_arc.lock().expect("slot lock poisoned");
            if slot.generation != id.generation || slot.session.is_none() {
                return Err(ServiceError::UnknownSession(id));
            }
            if let Some(wal) = &self.wal {
                let ev = WalEvent::Cancelled {
                    index: id.index,
                    generation: id.generation,
                };
                match how {
                    // An explicit cancel is an acknowledgement: it must be
                    // durable, or the session stays live and the caller
                    // sees the durability failure.
                    Removal::Cancelled => wal.append(&ev)?,
                    // Internal teardown (divergence): proceed regardless;
                    // at worst recovery resurrects a session that will
                    // diverge again on its next step.
                    Removal::Errored => wal.append_best_effort(&ev),
                }
            }
            slot.generation = slot.generation.wrapping_add(1);
            slot.session.take().expect("checked above")
        };
        session.plan.release(session.kind, session.policy);
        self.release_slot(id.index);
        let counter = match how {
            Removal::Cancelled => &self.counters.cancelled,
            Removal::Errored => &self.counters.errored,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

impl std::fmt::Debug for SearchEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchEngine")
            .field("live", &self.live_sessions())
            .field("max_sessions", &self.config.max_sessions)
            .field("durable", &self.wal.is_some())
            .field("degraded", &self.is_degraded())
            .finish()
    }
}

/// The inverted-control surface of one session: ask, suspend, answer,
/// finish. A thin, copyable view over ([`SearchEngine`], [`SessionId`]) —
/// drop it freely and [`SearchEngine::session`] reattaches by id.
#[derive(Debug, Clone, Copy)]
pub struct SessionHandle<'e> {
    engine: &'e SearchEngine,
    id: SessionId,
}

impl SessionHandle<'_> {
    /// The durable id: serialise it into your task queue and reattach with
    /// [`SearchEngine::session`] — on the same engine, or on the one
    /// [`SearchEngine::recover`] rebuilt after a crash.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// See [`SearchEngine::next_question`].
    pub fn next_question(&mut self) -> Result<SessionStep, ServiceError> {
        self.engine.next_question(self.id)
    }

    /// See [`SearchEngine::answer`].
    pub fn answer(&mut self, yes: bool) -> Result<(), ServiceError> {
        self.engine.answer(self.id, yes)
    }

    /// See [`SearchEngine::finish`].
    pub fn finish(self) -> Result<SearchOutcome, ServiceError> {
        self.engine.finish(self.id)
    }

    /// See [`SearchEngine::cancel`].
    pub fn cancel(self) -> Result<(), ServiceError> {
        self.engine.cancel(self.id)
    }
}
