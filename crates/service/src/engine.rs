//! The multi-tenant session engine.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use aigs_core::{CoreError, SearchOutcome, SessionStep, SessionStepper};

use crate::plan::PlanEntry;
use crate::{PlanId, PlanSpec, PolicyKind, ServiceError};

/// Default admission limit of [`EngineConfig`].
pub const DEFAULT_MAX_SESSIONS: usize = 65_536;

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Admission limit on concurrently live sessions. Opening past it fails
    /// with [`ServiceError::AtCapacity`] unless idle eviction frees a slot.
    pub max_sessions: usize,
    /// Idle-eviction threshold on the engine's logical clock (every engine
    /// operation is one tick). A session untouched for this many ticks is
    /// evictable by [`SearchEngine::sweep_idle`] — which also runs
    /// automatically when admission is full. `None` disables eviction:
    /// abandoned sessions then hold their slots until cancelled.
    pub idle_ticks: Option<u64>,
    /// Per-session query cap forwarded to [`SessionStepper::start`] (the
    /// `4·n + 64` safety cap always applies on top).
    pub max_queries: Option<u32>,
    /// How many warm policy instances each (plan, kind) pool retains.
    pub pool_cap: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_sessions: DEFAULT_MAX_SESSIONS,
            idle_ticks: None,
            max_queries: None,
            pool_cap: 64,
        }
    }
}

/// Generational handle to one live session. Stale ids (finished, cancelled
/// or evicted sessions, even after slot reuse) are rejected with
/// [`ServiceError::UnknownSession`], never silently routed to a stranger's
/// search. Like [`crate::PlanId`], the id is scoped to the issuing engine,
/// so it cannot alias a session on a sibling engine either.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId {
    engine: u32,
    index: u32,
    generation: u32,
}

/// A point-in-time snapshot of engine activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Currently live (suspended or mid-step) sessions.
    pub live: usize,
    /// High-water mark of `live`.
    pub peak_live: usize,
    /// Sessions successfully opened.
    pub opened: u64,
    /// Sessions finished with an outcome.
    pub finished: u64,
    /// Sessions cancelled by their caller.
    pub cancelled: u64,
    /// Sessions evicted as idle.
    pub evicted: u64,
    /// Sessions torn down by a search error (divergence) plus opens refused
    /// by a policy construction error.
    pub errored: u64,
    /// `next_question`/`answer` operations served.
    pub steps: u64,
    /// Session opens served by a warm pooled policy instance (the O(Δ)
    /// journal-reset path) rather than a fresh build.
    pub pool_hits: u64,
}

struct LiveSession {
    plan: Arc<PlanEntry>,
    kind: PolicyKind,
    policy: Box<dyn aigs_core::Policy + Send>,
    stepper: SessionStepper,
    last_touch: u64,
}

struct Slot {
    generation: u32,
    session: Option<LiveSession>,
}

#[derive(Default)]
struct Counters {
    opened: AtomicU64,
    finished: AtomicU64,
    cancelled: AtomicU64,
    evicted: AtomicU64,
    errored: AtomicU64,
    steps: AtomicU64,
    pool_hits: AtomicU64,
    peak_live: AtomicUsize,
}

enum Removal {
    Cancelled,
    Errored,
}

/// A concurrent, suspendable multi-tenant search engine.
///
/// The engine is `Sync`: share it behind an `Arc` (or plain reference) and
/// drive different sessions from as many threads as you like. Per-session
/// operations lock only that session's slot, so steps on distinct sessions
/// run in parallel; the global locks are touched only by registration,
/// admission and eviction sweeps.
///
/// ### Lifecycle
///
/// [`open_session`](Self::open_session) →
/// ([`next_question`](SessionHandle::next_question) → *ship to oracle,
/// suspend* → [`answer`](SessionHandle::answer))\* →
/// [`finish`](SessionHandle::finish). Sessions that stop answering are
/// reclaimed by idle eviction; sessions whose search errors are torn down
/// individually, returning the [`CoreError`] to their caller only.
pub struct SearchEngine {
    config: EngineConfig,
    /// Process-unique nonce baked into every id this engine issues, so a
    /// [`PlanId`]/[`SessionId`] presented to a *different* engine is
    /// rejected instead of aliasing that engine's slot at the same index.
    engine_id: u32,
    plans: RwLock<Vec<Arc<PlanEntry>>>,
    slots: RwLock<Vec<Arc<Mutex<Slot>>>>,
    free: Mutex<Vec<u32>>,
    live: AtomicUsize,
    clock: AtomicU64,
    counters: Counters,
}

/// Issues [`SearchEngine::engine_id`] nonces (process-wide, never zero).
static NEXT_ENGINE_ID: AtomicU32 = AtomicU32::new(1);

impl Default for SearchEngine {
    fn default() -> Self {
        Self::new(EngineConfig::default())
    }
}

impl SearchEngine {
    /// An empty engine with the given limits.
    pub fn new(config: EngineConfig) -> Self {
        SearchEngine {
            config,
            engine_id: NEXT_ENGINE_ID.fetch_add(1, Ordering::Relaxed),
            plans: RwLock::new(Vec::new()),
            slots: RwLock::new(Vec::new()),
            free: Mutex::new(Vec::new()),
            live: AtomicUsize::new(0),
            clock: AtomicU64::new(0),
            counters: Counters::default(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Registers a plan (hierarchy + distribution + prices + backend
    /// choice), building its shared reachability index once. Fails with
    /// [`ServiceError::Core`] when the spec is inconsistent (e.g. weight
    /// vector length mismatch).
    pub fn register_plan(&self, spec: PlanSpec) -> Result<PlanId, ServiceError> {
        let entry = Arc::new(PlanEntry::build(spec, self.config.pool_cap)?);
        let mut plans = self.plans.write().expect("plans lock poisoned");
        let id = PlanId {
            engine: self.engine_id,
            index: u32::try_from(plans.len()).expect("plan count fits u32"),
        };
        plans.push(entry);
        Ok(id)
    }

    /// Opens a suspended session for `kind` on `plan`.
    ///
    /// Policy instances come from the plan's pool when warm (journal reset,
    /// O(Δ)); construction/reset failures — an oversized
    /// [`PolicyKind::Optimal`] instance, [`PolicyKind::GreedyTree`] on a
    /// DAG — surface as [`ServiceError::Core`] to this caller alone. At the
    /// admission limit an idle-eviction sweep runs first; if nothing is
    /// reclaimable the open fails with [`ServiceError::AtCapacity`].
    pub fn open_session(
        &self,
        plan: PlanId,
        kind: PolicyKind,
    ) -> Result<SessionHandle<'_>, ServiceError> {
        let now = self.tick();
        if plan.engine != self.engine_id {
            return Err(ServiceError::UnknownPlan(plan));
        }
        let plan_entry = {
            let plans = self.plans.read().expect("plans lock poisoned");
            plans
                .get(plan.index as usize)
                .cloned()
                .ok_or(ServiceError::UnknownPlan(plan))?
        };

        // Reserve a live slot (sweeping idle sessions when full).
        if !self.reserve_live() {
            self.sweep_idle();
            if !self.reserve_live() {
                return Err(ServiceError::AtCapacity {
                    live: self.live.load(Ordering::Relaxed),
                    limit: self.config.max_sessions,
                });
            }
        }

        let (mut policy, pool_hit) = plan_entry.acquire(kind);
        let stepper = match SessionStepper::start(
            policy.as_mut(),
            &plan_entry.ctx(),
            self.config.max_queries,
        ) {
            Ok(s) => s,
            Err(e) => {
                // A failed reset leaves the instance in an unknown state:
                // drop it rather than re-pool it, release the reservation,
                // and hand the error to this caller only.
                self.live.fetch_sub(1, Ordering::Relaxed);
                self.counters.errored.fetch_add(1, Ordering::Relaxed);
                return Err(e.into());
            }
        };
        if pool_hit {
            self.counters.pool_hits.fetch_add(1, Ordering::Relaxed);
        }

        let session = LiveSession {
            plan: plan_entry,
            kind,
            policy,
            stepper,
            last_touch: now,
        };
        let index = self.allocate_slot();
        let slot_arc = self.slot_arc(index);
        let generation = {
            let mut slot = slot_arc.lock().expect("slot lock poisoned");
            debug_assert!(slot.session.is_none(), "free list handed out a live slot");
            slot.session = Some(session);
            slot.generation
        };
        self.counters.opened.fetch_add(1, Ordering::Relaxed);
        Ok(SessionHandle {
            engine: self,
            id: SessionId {
                engine: self.engine_id,
                index,
                generation,
            },
        })
    }

    /// Reattaches to a live session by id (e.g. after the id travelled
    /// through a task queue). The id is validated lazily by the next
    /// operation.
    pub fn session(&self, id: SessionId) -> SessionHandle<'_> {
        SessionHandle { engine: self, id }
    }

    /// What session `id` needs next — a question to forward to its oracle,
    /// or its resolved target. A session that exhausts its query cap is
    /// torn down (its policy instance returns to the pool) and
    /// [`CoreError::Diverged`] is returned to this caller; every other
    /// session is untouched.
    pub fn next_question(&self, id: SessionId) -> Result<SessionStep, ServiceError> {
        let step = self.with_session(id, |s| {
            let LiveSession {
                plan,
                policy,
                stepper,
                ..
            } = s;
            stepper.next_question(policy.as_mut(), &plan.ctx())
        })?;
        self.counters.steps.fetch_add(1, Ordering::Relaxed);
        match step {
            Ok(step) => Ok(step),
            Err(e @ CoreError::Diverged { .. }) => {
                // The search ran out of budget: reclaim the slot. The policy
                // itself is healthy (divergence is a budget condition), so it
                // may re-enter the pool.
                let _ = self.remove(id, Removal::Errored);
                Err(e.into())
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Feeds the oracle's answer for the pending question of session `id`.
    /// Answering with no question outstanding is a recoverable protocol
    /// error ([`CoreError::SessionMisuse`]); the session stays live.
    pub fn answer(&self, id: SessionId, yes: bool) -> Result<(), ServiceError> {
        let fed = self.with_session(id, |s| {
            let LiveSession {
                plan,
                policy,
                stepper,
                ..
            } = s;
            stepper.answer(policy.as_mut(), &plan.ctx(), yes)
        })?;
        self.counters.steps.fetch_add(1, Ordering::Relaxed);
        fed.map_err(ServiceError::from)
    }

    /// Completes a resolved session: returns its [`SearchOutcome`], frees
    /// the slot and returns the policy instance to the plan's pool. While
    /// unresolved this errs with [`CoreError::SessionMisuse`] and the
    /// session stays live.
    pub fn finish(&self, id: SessionId) -> Result<SearchOutcome, ServiceError> {
        // Probe resolution and take the session under ONE slot-lock
        // acquisition: a probe-then-remove pair would let a concurrent
        // cancel/evict slip between the two and discard the outcome.
        let slot_arc = self.lookup_slot(id)?;
        let (outcome, session) = {
            let mut slot = slot_arc.lock().expect("slot lock poisoned");
            if slot.generation != id.generation {
                return Err(ServiceError::UnknownSession(id));
            }
            let session = slot
                .session
                .as_mut()
                .ok_or(ServiceError::UnknownSession(id))?;
            session.last_touch = self.tick();
            let outcome = session
                .stepper
                .finish(session.policy.as_ref())
                .map_err(ServiceError::from)?;
            slot.generation = slot.generation.wrapping_add(1);
            (outcome, slot.session.take().expect("checked above"))
        };
        session.plan.release(session.kind, session.policy);
        self.release_slot(id.index);
        self.counters.finished.fetch_add(1, Ordering::Relaxed);
        Ok(outcome)
    }

    /// Discards a session regardless of progress, reclaiming its slot.
    pub fn cancel(&self, id: SessionId) -> Result<(), ServiceError> {
        self.remove(id, Removal::Cancelled)
    }

    /// Evicts every session idle for at least the configured
    /// [`EngineConfig::idle_ticks`], returning how many were reclaimed.
    /// No-op (returns 0) when eviction is disabled.
    ///
    /// The sweep scans every slot (O(`max_sessions`) per call), and
    /// [`open_session`](Self::open_session) runs it whenever admission is
    /// full — fine at the measured scales, but an open storm against a
    /// saturated engine pays the scan per refused open (see the ROADMAP
    /// serving follow-ups for the last-touch-heap fix).
    pub fn sweep_idle(&self) -> usize {
        let Some(max_idle) = self.config.idle_ticks else {
            return 0;
        };
        let now = self.clock.load(Ordering::Relaxed);
        let slots: Vec<(u32, Arc<Mutex<Slot>>)> = {
            let slots = self.slots.read().expect("slots lock poisoned");
            slots
                .iter()
                .enumerate()
                .map(|(i, s)| (i as u32, Arc::clone(s)))
                .collect()
        };
        let mut evicted = 0;
        for (index, slot_arc) in slots {
            let reclaimed = {
                let mut slot = slot_arc.lock().expect("slot lock poisoned");
                let idle = slot
                    .session
                    .as_ref()
                    .is_some_and(|s| now.saturating_sub(s.last_touch) >= max_idle);
                if idle {
                    slot.generation = slot.generation.wrapping_add(1);
                    slot.session.take()
                } else {
                    None
                }
            };
            if let Some(s) = reclaimed {
                s.plan.release(s.kind, s.policy);
                self.release_slot(index);
                self.counters.evicted.fetch_add(1, Ordering::Relaxed);
                evicted += 1;
            }
        }
        evicted
    }

    /// Currently live sessions.
    pub fn live_sessions(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// A snapshot of the activity counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            live: self.live.load(Ordering::Relaxed),
            peak_live: self.counters.peak_live.load(Ordering::Relaxed),
            opened: self.counters.opened.load(Ordering::Relaxed),
            finished: self.counters.finished.load(Ordering::Relaxed),
            cancelled: self.counters.cancelled.load(Ordering::Relaxed),
            evicted: self.counters.evicted.load(Ordering::Relaxed),
            errored: self.counters.errored.load(Ordering::Relaxed),
            steps: self.counters.steps.load(Ordering::Relaxed),
            pool_hits: self.counters.pool_hits.load(Ordering::Relaxed),
        }
    }

    // ---- internals ----------------------------------------------------

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Atomically claims one unit of live capacity; callers must release it
    /// (decrement) on every failure path.
    fn reserve_live(&self) -> bool {
        match self
            .live
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |l| {
                (l < self.config.max_sessions).then_some(l + 1)
            }) {
            Ok(prev) => {
                // Record the claimed value, not a re-load: a concurrent
                // release between the claim and a load would hide the peak.
                self.counters
                    .peak_live
                    .fetch_max(prev + 1, Ordering::Relaxed);
                true
            }
            Err(_) => false,
        }
    }

    fn allocate_slot(&self) -> u32 {
        if let Some(i) = self.free.lock().expect("free list poisoned").pop() {
            return i;
        }
        let mut slots = self.slots.write().expect("slots lock poisoned");
        let index = u32::try_from(slots.len()).expect("slot count fits u32");
        slots.push(Arc::new(Mutex::new(Slot {
            generation: 0,
            session: None,
        })));
        index
    }

    fn release_slot(&self, index: u32) {
        self.live.fetch_sub(1, Ordering::Relaxed);
        self.free.lock().expect("free list poisoned").push(index);
    }

    fn slot_arc(&self, index: u32) -> Arc<Mutex<Slot>> {
        Arc::clone(&self.slots.read().expect("slots lock poisoned")[index as usize])
    }

    /// Resolves `id` to its slot, rejecting ids issued by another engine.
    fn lookup_slot(&self, id: SessionId) -> Result<Arc<Mutex<Slot>>, ServiceError> {
        if id.engine != self.engine_id {
            return Err(ServiceError::UnknownSession(id));
        }
        let slots = self.slots.read().expect("slots lock poisoned");
        slots
            .get(id.index as usize)
            .cloned()
            .ok_or(ServiceError::UnknownSession(id))
    }

    /// Runs `f` on the live session behind `id`, touching its idle clock.
    fn with_session<T>(
        &self,
        id: SessionId,
        f: impl FnOnce(&mut LiveSession) -> T,
    ) -> Result<T, ServiceError> {
        let slot_arc = self.lookup_slot(id)?;
        let mut slot = slot_arc.lock().expect("slot lock poisoned");
        if slot.generation != id.generation {
            return Err(ServiceError::UnknownSession(id));
        }
        let session = slot
            .session
            .as_mut()
            .ok_or(ServiceError::UnknownSession(id))?;
        session.last_touch = self.tick();
        Ok(f(session))
    }

    fn remove(&self, id: SessionId, how: Removal) -> Result<(), ServiceError> {
        let slot_arc = self.lookup_slot(id)?;
        let session = {
            let mut slot = slot_arc.lock().expect("slot lock poisoned");
            if slot.generation != id.generation || slot.session.is_none() {
                return Err(ServiceError::UnknownSession(id));
            }
            slot.generation = slot.generation.wrapping_add(1);
            slot.session.take().expect("checked above")
        };
        session.plan.release(session.kind, session.policy);
        self.release_slot(id.index);
        let counter = match how {
            Removal::Cancelled => &self.counters.cancelled,
            Removal::Errored => &self.counters.errored,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

impl std::fmt::Debug for SearchEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchEngine")
            .field("live", &self.live_sessions())
            .field("max_sessions", &self.config.max_sessions)
            .finish()
    }
}

/// The inverted-control surface of one session: ask, suspend, answer,
/// finish. A thin, copyable view over ([`SearchEngine`], [`SessionId`]) —
/// drop it freely and [`SearchEngine::session`] reattaches by id.
#[derive(Debug, Clone, Copy)]
pub struct SessionHandle<'e> {
    engine: &'e SearchEngine,
    id: SessionId,
}

impl SessionHandle<'_> {
    /// The durable id: serialise it into your task queue and reattach with
    /// [`SearchEngine::session`].
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// See [`SearchEngine::next_question`].
    pub fn next_question(&mut self) -> Result<SessionStep, ServiceError> {
        self.engine.next_question(self.id)
    }

    /// See [`SearchEngine::answer`].
    pub fn answer(&mut self, yes: bool) -> Result<(), ServiceError> {
        self.engine.answer(self.id, yes)
    }

    /// See [`SearchEngine::finish`].
    pub fn finish(self) -> Result<SearchOutcome, ServiceError> {
        self.engine.finish(self.id)
    }

    /// See [`SearchEngine::cancel`].
    pub fn cancel(self) -> Result<(), ServiceError> {
        self.engine.cancel(self.id)
    }
}
