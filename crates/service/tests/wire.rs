//! Loopback integration tests for the wire protocol: a [`WireServer`] on
//! an ephemeral port, driven by [`WireClient`]s and, for the malformed
//! cases, raw sockets. The core property mirrors `transcripts.rs`: a
//! session stepped over TCP asks bit-identically to the inline loop.

mod common;

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use aigs_core::{run_session, SearchContext, SessionStep, TargetOracle, TranscriptOracle};
use aigs_graph::NodeId;
use aigs_service::wire::{WireClient, WireError, WireFault, WireServer};
use aigs_service::{EngineConfig, PlanId, PolicyKind, SearchEngine};
use aigs_testutil::{dag_from_seed, generic_prices, generic_weights};
use common::env_reach_choice;

const N: usize = 15;
const SEED: u64 = 0x31E;

fn serve(shards: usize, max_sessions: usize) -> (Arc<SearchEngine>, PlanId, WireServer) {
    let engine = Arc::new(SearchEngine::new(EngineConfig {
        shards,
        max_sessions,
        ..EngineConfig::default()
    }));
    let dag = Arc::new(dag_from_seed(N, 0.3, SEED));
    let weights = Arc::new(generic_weights(N, SEED));
    let costs = Arc::new(generic_prices(N, SEED));
    let plan = engine
        .register_plan(
            aigs_service::PlanSpec::new(dag, weights)
                .with_costs(costs)
                .with_reach(env_reach_choice()),
        )
        .unwrap();
    let server = WireServer::bind(Arc::clone(&engine), "127.0.0.1:0", 2).unwrap();
    (engine, plan, server)
}

/// Drives a session over the wire with truthful answers, returning the
/// transcript and outcome.
fn drive_wire(
    client: &mut WireClient,
    id: aigs_service::SessionId,
    dag: &aigs_graph::Dag,
    target: NodeId,
) -> (Vec<(NodeId, bool)>, aigs_core::SearchOutcome) {
    let mut transcript = Vec::new();
    loop {
        match client.next_question(id).unwrap() {
            SessionStep::Resolved(_) => return (transcript, client.finish(id).unwrap()),
            SessionStep::Ask(q) => {
                let yes = dag.reaches(q, target);
                transcript.push((q, yes));
                client.answer(id, yes).unwrap();
            }
        }
    }
}

/// One session per policy kind over TCP equals the inline loop, bit for
/// bit; stats flow back over the same connection.
#[test]
fn wire_sessions_match_inline() {
    let (_engine, plan, server) = serve(2, 64);
    let dag = Arc::new(dag_from_seed(N, 0.3, SEED));
    let weights = Arc::new(generic_weights(N, SEED));
    let costs = Arc::new(generic_prices(N, SEED));
    let mut client = WireClient::connect(server.local_addr()).unwrap();

    for (i, kind) in [
        PolicyKind::TopDown,
        PolicyKind::Migs,
        PolicyKind::Wigs,
        PolicyKind::GreedyDag,
        PolicyKind::CostSensitive,
        PolicyKind::Random { seed: 0xfeed },
    ]
    .into_iter()
    .enumerate()
    {
        let target = NodeId::new((i * 4 + 1) % N);
        let ctx = SearchContext::new(&dag, &weights).with_costs(&costs);
        let mut policy = kind.build();
        let mut oracle = TranscriptOracle::new(TargetOracle::new(&dag, target));
        let want = run_session(policy.as_mut(), &ctx, &mut oracle, None).unwrap();

        let id = client.open(plan, kind).unwrap();
        let (transcript, got) = drive_wire(&mut client, id, &dag, target);
        assert_eq!(transcript, oracle.transcript, "{kind:?}: wire vs inline");
        assert_eq!(got.target, want.target);
        assert_eq!(got.queries, want.queries);
        assert_eq!(got.price.to_bits(), want.price.to_bits(), "{kind:?}");
    }

    let stats = client.stats().unwrap();
    assert_eq!(stats.opened, 6);
    assert_eq!(stats.finished, 6);
    assert_eq!(stats.live, 0);
    assert_eq!(stats.shards, 2);
    server.shutdown();
}

/// A session opened on one connection is addressable from another — the
/// id, not the socket, is the session's identity (reconnects work).
#[test]
fn sessions_survive_reconnect() {
    let (_engine, plan, server) = serve(2, 64);
    let dag = dag_from_seed(N, 0.3, SEED);
    let target = NodeId::new(6);

    let mut first = WireClient::connect(server.local_addr()).unwrap();
    let id = first.open(plan, PolicyKind::GreedyDag).unwrap();
    if let SessionStep::Ask(q) = first.next_question(id).unwrap() {
        first.answer(id, dag.reaches(q, target)).unwrap();
    }
    drop(first); // client vanishes mid-session

    let mut second = WireClient::connect(server.local_addr()).unwrap();
    let (_, out) = drive_wire(&mut second, id, &dag, target);
    assert_eq!(out.target, target);
    server.shutdown();
}

/// Service refusals arrive as typed faults, not transport errors.
#[test]
fn faults_are_typed() {
    let (_engine, plan, server) = serve(1, 2);
    let mut client = WireClient::connect(server.local_addr()).unwrap();

    let a = client.open(plan, PolicyKind::TopDown).unwrap();
    let _b = client.open(plan, PolicyKind::TopDown).unwrap();
    match client.open(plan, PolicyKind::TopDown) {
        Err(WireError::Fault(WireFault::AtCapacity { live, limit, .. })) => {
            assert_eq!(live, 2);
            assert_eq!(limit, 2);
        }
        other => panic!("expected AtCapacity fault, got {other:?}"),
    }

    client.cancel(a).unwrap();
    match client.next_question(a) {
        Err(WireError::Fault(WireFault::UnknownSession)) => {}
        other => panic!("expected UnknownSession fault, got {other:?}"),
    }
    // A plan id minted by a *different* engine carries the wrong engine
    // nonce, so this server has never heard of it.
    let stranger = SearchEngine::default();
    let foreign: PlanId = stranger
        .register_plan(
            aigs_service::PlanSpec::new(
                Arc::new(dag_from_seed(N, 0.3, SEED)),
                Arc::new(generic_weights(N, SEED)),
            )
            .with_reach(env_reach_choice()),
        )
        .unwrap();
    match client.open(foreign, PolicyKind::TopDown) {
        Err(WireError::Fault(WireFault::UnknownPlan)) => {}
        other => panic!("expected UnknownPlan fault, got {other:?}"),
    }
    server.shutdown();
}

fn raw_roundtrip(addr: std::net::SocketAddr, payload: &[u8]) -> std::io::Result<Vec<u8>> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(&(payload.len() as u32).to_le_bytes())?;
    stream.write_all(payload)?;
    let mut len = [0u8; 4];
    stream.read_exact(&mut len)?;
    let mut body = vec![0u8; u32::from_le_bytes(len) as usize];
    stream.read_exact(&mut body)?;
    Ok(body)
}

/// Malformed requests get a BAD_REQUEST answer; an unframeable length
/// prefix closes the connection without one.
#[test]
fn malformed_requests_are_rejected() {
    let (_engine, _plan, server) = serve(1, 8);
    let addr = server.local_addr();

    // Unknown opcode → status 0x08 + UTF-8 detail.
    let body = raw_roundtrip(addr, &[0xEE]).unwrap();
    assert_eq!(body[0], 0x08);
    assert!(std::str::from_utf8(&body[1..]).unwrap().contains("opcode"));

    // Truncated OPEN body → BAD_REQUEST, not a hang or a crash.
    let body = raw_roundtrip(addr, &[0x01, 1, 2, 3]).unwrap();
    assert_eq!(body[0], 0x08);

    // Oversized length prefix → connection closed with no response frame.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(&u32::MAX.to_le_bytes()).unwrap();
    stream.write_all(&[0u8; 16]).unwrap();
    let mut buf = [0u8; 1];
    let got = stream.read(&mut buf).unwrap_or(0);
    assert_eq!(got, 0, "oversized frame must close, not answer");
    server.shutdown();
}

/// Shutdown unblocks the accept threads and joins them even with an idle
/// client connected; the port stops answering afterwards.
#[test]
fn shutdown_is_prompt() {
    let (_engine, _plan, server) = serve(1, 8);
    let addr = server.local_addr();
    let _idle = TcpStream::connect(addr).unwrap();
    server.shutdown(); // must not hang on the idle connection
                       // A fresh connect may be accepted by the OS backlog, but no thread
                       // serves it: a request sees EOF (or a refused connect) instead of a
                       // response.
    if let Ok(mut stream) = TcpStream::connect(addr) {
        let _ = stream.write_all(&1u32.to_le_bytes());
        let _ = stream.write_all(&[0x06]);
        let mut buf = [0u8; 1];
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .unwrap();
        match stream.read(&mut buf) {
            Ok(0) => {} // EOF: nothing serving
            Err(e) => assert!(e.kind() != std::io::ErrorKind::InvalidData, "{e}"),
            Ok(_) => panic!("server answered after shutdown"),
        }
    }
}

/// The extended STATS body, SHARD_STATS, and METRICS (full + delta)
/// round-trip over the wire and reconcile with each other.
#[test]
fn stats_shard_stats_and_metrics_over_wire() {
    use aigs_service::telemetry::{Op, Tier};

    let (engine, plan, server) = serve(2, 64);
    let dag = Arc::new(dag_from_seed(N, 0.3, SEED));
    let mut client = WireClient::connect(server.local_addr()).unwrap();

    for v in dag.nodes().take(5) {
        let id = client.open(plan, PolicyKind::GreedyDag).unwrap();
        drive_wire(&mut client, id, &dag, v);
    }

    // Extended stats: healthy engine → degraded fields empty.
    let stats = client.stats().unwrap();
    assert_eq!(stats.opened, 5);
    assert!(!stats.degraded);
    assert_eq!(stats.degraded_since, None);
    assert_eq!(stats.degraded_reason, None);

    // Per-shard rows sum to the aggregate.
    let shards = client.stats_per_shard().unwrap();
    assert_eq!(shards.len(), stats.shards);
    assert_eq!(shards.iter().map(|s| s.opened).sum::<u64>(), stats.opened);
    assert_eq!(shards.iter().map(|s| s.steps).sum::<u64>(), stats.steps);
    assert_eq!(
        shards.iter().map(|s| s.finished).sum::<u64>(),
        stats.finished
    );

    // Full metrics snapshot decodes and matches the in-process one.
    let full = client.metrics(false).unwrap();
    let local = engine.telemetry();
    assert_eq!(full.enabled, local.enabled);
    for op in aigs_service::telemetry::OPS {
        assert_eq!(full.op_total(op), local.op_total(op), "{op:?} over wire");
    }
    assert_eq!(
        full.op_tier(Op::Next, Tier::Live).sum,
        local.op_tier(Op::Next, Tier::Live).sum
    );
    assert_eq!(full.plans.len(), local.plans.len());

    // Delta mode: new traffic shows up, and only the new traffic.
    let before_opens = full.op_total(Op::Open);
    let id = client.open(plan, PolicyKind::GreedyDag).unwrap();
    drive_wire(&mut client, id, &dag, aigs_graph::NodeId::new(1));
    let delta = client.metrics(true).unwrap();
    assert_eq!(delta.op_total(Op::Open), 1, "delta after one open");
    assert!(delta.op_total(Op::Open) < before_opens + 1 || before_opens == 0);
    // An immediate second delta is empty of operations.
    let quiet = client.metrics(true).unwrap();
    for op in aigs_service::telemetry::OPS {
        assert_eq!(quiet.op_total(op), 0, "{op:?} in a quiet delta");
    }
    server.shutdown();
}

/// SLOW_OPS drains the per-shard slow-op rings over the wire: with a 1 ns
/// threshold every operation journals, entries decode to the in-process
/// [`aigs_service::telemetry::SlowOp`] shape, and the drain is
/// destructive.
#[test]
fn slow_ops_drain_over_wire() {
    std::env::set_var("AIGS_SLOW_OP_NS", "1");
    let engine = Arc::new(SearchEngine::new(EngineConfig {
        shards: 2,
        max_sessions: 64,
        telemetry: Some(true),
        ..EngineConfig::default()
    }));
    std::env::remove_var("AIGS_SLOW_OP_NS");
    let dag = Arc::new(dag_from_seed(N, 0.3, SEED));
    let weights = Arc::new(generic_weights(N, SEED));
    let plan = engine
        .register_plan(
            aigs_service::PlanSpec::new(Arc::clone(&dag), weights).with_reach(env_reach_choice()),
        )
        .unwrap();
    let server = WireServer::bind(Arc::clone(&engine), "127.0.0.1:0", 2).unwrap();
    let mut client = WireClient::connect(server.local_addr()).unwrap();

    for v in dag.nodes().take(4) {
        let id = client.open(plan, PolicyKind::GreedyDag).unwrap();
        drive_wire(&mut client, id, &dag, v);
    }

    let slow = client.slow_ops().unwrap();
    assert!(!slow.is_empty(), "1 ns threshold should flag everything");
    for entry in &slow {
        assert!((entry.shard as usize) < 2);
        assert_eq!(entry.kind, PolicyKind::GreedyDag);
        assert!(entry.duration_ns >= 1);
    }
    // Some entry must be a session step, not just opens.
    assert!(slow
        .iter()
        .any(|e| matches!(e.op, aigs_service::telemetry::Op::Next)));
    // Draining is destructive: a quiet engine has nothing new.
    assert!(client.slow_ops().unwrap().is_empty());
    server.shutdown();
}

/// Pointing a plain HTTP client at the wire port serves the Prometheus
/// exposition on `/metrics` and a 404 elsewhere.
#[test]
fn http_get_serves_prometheus_exposition() {
    let (_engine, plan, server) = serve(1, 16);
    let dag = Arc::new(dag_from_seed(N, 0.3, SEED));
    let mut client = WireClient::connect(server.local_addr()).unwrap();
    let id = client.open(plan, PolicyKind::GreedyDag).unwrap();
    drive_wire(&mut client, id, &dag, aigs_graph::NodeId::new(2));

    let http = |req: &str| -> String {
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(req.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    };

    let ok = http("GET /metrics HTTP/1.1\r\nhost: test\r\n\r\n");
    assert!(ok.starts_with("HTTP/1.1 200"), "{ok}");
    assert!(
        ok.contains("content-type: text/plain; version=0.0.4"),
        "{ok}"
    );
    assert!(ok.contains("aigs_live_sessions"), "{ok}");
    assert!(ok.contains("aigs_ops_total{op=\"open\""), "{ok}");
    assert!(
        !ok.contains("# EOF"),
        "classic format has no terminator: {ok}"
    );

    // An OpenMetrics-capable scraper negotiates the 1.0.0 media type and
    // gets the spec's mandatory `# EOF` terminator.
    let om = http(
        "GET /metrics HTTP/1.1\r\nhost: test\r\n\
         Accept: application/openmetrics-text; version=1.0.0\r\n\r\n",
    );
    assert!(om.starts_with("HTTP/1.1 200"), "{om}");
    assert!(
        om.contains("content-type: application/openmetrics-text; version=1.0.0; charset=utf-8"),
        "{om}"
    );
    assert!(om.contains("aigs_live_sessions"), "{om}");
    assert!(om.ends_with("# EOF\n"), "{om}");

    let missing = http("GET / HTTP/1.1\r\nhost: test\r\n\r\n");
    assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
    server.shutdown();
}
