//! Differential tests for the compiled serving tier.
//!
//! The tier's contract: a session served from a [`CompiledPlan`] flat
//! array is **observably indistinguishable** from one served by the live
//! pooled policy — same questions in the same order, same outcome, same
//! price bits — for every policy kind, every reachability backend (the CI
//! matrix forces them via `AIGS_TEST_BACKEND`), every target, whether the
//! session stays inside the compiled frontier, crosses it mid-flight, or
//! crash-recovers through the sharded WAL onto either tier.

mod common;

use std::sync::Arc;

use aigs_core::{CompiledConfig, SessionStep, MAX_EXACT_NODES};
use aigs_graph::NodeId;
use aigs_service::{
    CompiledTier, DurabilityConfig, EngineConfig, FsyncPolicy, PlanSpec, PolicyKind, SearchEngine,
    SessionId,
};
use aigs_testutil::{dag_from_seed, generic_prices, generic_weights};
use common::{drive_to_end, env_reach_choice, scratch_dir};

const N: usize = 13;
const SEED: u64 = 0xC0DE;

fn plan_spec() -> PlanSpec {
    let dag = Arc::new(dag_from_seed(N, 0.3, SEED));
    let weights = Arc::new(generic_weights(N, SEED));
    let costs = Arc::new(generic_prices(N, SEED));
    PlanSpec::new(dag, weights)
        .with_costs(costs)
        .with_reach(env_reach_choice())
}

/// Every kind the compiled tier must be transcript-equivalent over.
/// `Random` rides along to prove it is *served live* (never compiled)
/// rather than silently miscompiled.
fn roster() -> Vec<PolicyKind> {
    let mut kinds = vec![
        PolicyKind::TopDown,
        PolicyKind::Migs,
        PolicyKind::Wigs,
        PolicyKind::GreedyDag,
        PolicyKind::GreedyNaive,
        PolicyKind::CostSensitive,
        PolicyKind::Random { seed: 0xfeed },
    ];
    if N <= MAX_EXACT_NODES {
        kinds.push(PolicyKind::Optimal);
    }
    kinds
}

fn engine_with_tier(tier: CompiledTier) -> SearchEngine {
    SearchEngine::new(EngineConfig {
        compiled: tier,
        ..EngineConfig::default()
    })
}

/// Drives one session per (kind, target) on `probe` and `control`,
/// asserting bit-identical transcripts and outcomes.
fn assert_differential(probe: &SearchEngine, control: &SearchEngine, spec: &PlanSpec) {
    let dag = spec.dag.clone();
    let probe_plan = probe.register_plan(spec.clone()).unwrap();
    let control_plan = control.register_plan(spec.clone()).unwrap();
    for kind in roster() {
        for z in dag.nodes() {
            let a = probe.open_session(probe_plan, kind).unwrap().id();
            let b = control.open_session(control_plan, kind).unwrap().id();
            let (ta, oa) = drive_to_end(probe, a, &dag, z);
            let (tb, ob) = drive_to_end(control, b, &dag, z);
            assert_eq!(ta, tb, "{kind:?} target {z}: transcripts diverged");
            assert_eq!(oa.target, ob.target, "{kind:?} target {z}");
            assert_eq!(oa.queries, ob.queries, "{kind:?} target {z}");
            assert_eq!(
                oa.price.to_bits(),
                ob.price.to_bits(),
                "{kind:?} target {z}: price bits diverged"
            );
        }
    }
}

#[test]
fn compiled_transcripts_match_live_for_every_kind_and_target() {
    // All × untruncated trees: every pooled kind serves compiled end to
    // end; Random serves live under the same roof.
    let probe = engine_with_tier(CompiledTier::All);
    let control = engine_with_tier(CompiledTier::Off);
    assert_differential(&probe, &control, &plan_spec());

    let (ps, cs) = (probe.stats(), control.stats());
    assert!(ps.compiled_hits > 0, "no step used the compiled tier");
    assert_eq!(
        ps.compiled_fallbacks, 0,
        "untruncated trees cannot fall back"
    );
    assert_eq!(cs.compiled_hits, 0, "tier-off engine served compiled steps");
    // Random is the only pooled-instance consumer on the probe engine, so
    // live steps happened there too.
    assert!(ps.steps > ps.compiled_hits, "Random must have served live");
}

#[test]
fn frontier_crossing_mid_flight_is_invisible() {
    // A depth-2 truncation on a 13-node DAG guarantees some sessions start
    // compiled and cross into the live tier mid-flight; transcripts must
    // not show the seam. PerPlan + spec-level opt-in keeps the test
    // meaning fixed no matter what AIGS_COMPILED says.
    let spec = plan_spec().with_compiled(CompiledConfig::new().with_max_depth(2));
    let probe = engine_with_tier(CompiledTier::PerPlan);
    let control = engine_with_tier(CompiledTier::Off);
    assert_differential(&probe, &control, &spec);

    let ps = probe.stats();
    assert!(ps.compiled_hits > 0, "no step used the compiled tier");
    assert!(
        ps.compiled_fallbacks > 0,
        "a depth-2 frontier on {N} nodes must be crossed by some session"
    );
}

#[test]
fn root_truncated_plans_open_live() {
    // max_depth 0 compiles to an empty array: every open falls back
    // immediately, and the engine serves exactly as if the tier were off.
    let spec = plan_spec().with_compiled(CompiledConfig::new().with_max_depth(0));
    let probe = engine_with_tier(CompiledTier::PerPlan);
    let control = engine_with_tier(CompiledTier::Off);
    assert_differential(&probe, &control, &spec);

    let ps = probe.stats();
    assert_eq!(ps.compiled_hits, 0);
    // Every open except Random's (which never requests a tree) fell back.
    let random_opens = spec.dag.node_count() as u64;
    assert_eq!(ps.compiled_fallbacks, ps.opened - random_opens);
}

#[test]
fn interleaved_compiled_sessions_suspend_and_resume() {
    // Many concurrent sessions, stepped round-robin one question at a
    // time — every step reattaches by id, so compiled cursor state must
    // survive suspension just like live policy state does.
    let spec = plan_spec().with_compiled(CompiledConfig::new().with_max_depth(2));
    let probe = engine_with_tier(CompiledTier::PerPlan);
    let control = engine_with_tier(CompiledTier::Off);
    let dag = spec.dag.clone();
    let probe_plan = probe.register_plan(spec.clone()).unwrap();
    let control_plan = control.register_plan(spec).unwrap();

    type Row = (SessionId, SessionId, NodeId, bool);
    let mut live: Vec<Row> = roster()
        .into_iter()
        .flat_map(|kind| dag.nodes().map(move |z| (kind, z)).collect::<Vec<_>>())
        .map(|(kind, z)| {
            let a = probe.open_session(probe_plan, kind).unwrap().id();
            let b = control.open_session(control_plan, kind).unwrap().id();
            (a, b, z, false)
        })
        .collect();
    while !live.is_empty() {
        let mut still = Vec::new();
        for (a, b, z, _) in live {
            let sa = probe.next_question(a).unwrap();
            let sb = control.next_question(b).unwrap();
            match (sa, sb) {
                (SessionStep::Resolved(ra), SessionStep::Resolved(rb)) => {
                    assert_eq!(ra, rb);
                    let oa = probe.finish(a).unwrap();
                    let ob = control.finish(b).unwrap();
                    assert_eq!(oa.target, z);
                    assert_eq!(oa.queries, ob.queries);
                    assert_eq!(oa.price.to_bits(), ob.price.to_bits());
                }
                (SessionStep::Ask(qa), SessionStep::Ask(qb)) => {
                    assert_eq!(qa, qb, "interleaved sessions diverged");
                    let yes = dag.reaches(qa, z);
                    probe.answer(a, yes).unwrap();
                    control.answer(b, yes).unwrap();
                    still.push((a, b, z, false));
                }
                (sa, sb) => panic!("tier disagreement: probe {sa:?} vs control {sb:?}"),
            }
        }
        live = still;
    }
    assert!(probe.stats().compiled_hits > 0);
}

/// Crash/recover differential, parameterised by the tier the *recovering*
/// engine runs: sessions opened compiled must continue bit-identically
/// whether recovery puts them back on the compiled tier or (tier now off)
/// replays them onto the live one — the logged mode bit is advisory.
fn crash_recover_differential(tag: &str, recover_tier: CompiledTier) {
    let dir = scratch_dir(tag);
    let spec = plan_spec().with_compiled(CompiledConfig::new().with_max_depth(2));
    let dag = spec.dag.clone();

    // Pre-crash: a 4-shard durable engine, one mid-flight session per
    // (kind, target) advanced a varying number of steps.
    let engine = SearchEngine::try_new(EngineConfig {
        shards: 4,
        compiled: CompiledTier::PerPlan,
        durability: Some(DurabilityConfig::new(&dir).with_fsync(FsyncPolicy::Always)),
        ..EngineConfig::default()
    })
    .unwrap();
    let plan = engine.register_plan(spec.clone()).unwrap();
    let control = engine_with_tier(CompiledTier::Off);
    let control_plan = control.register_plan(spec.clone()).unwrap();

    type Row = (SessionId, PolicyKind, NodeId);
    let mut rows: Vec<Row> = Vec::new();
    for (i, kind) in roster().into_iter().enumerate() {
        for z in dag.nodes() {
            let id = engine.open_session(plan, kind).unwrap().id();
            for _ in 0..(i + z.index()) % 4 {
                match engine.next_question(id).unwrap() {
                    SessionStep::Resolved(_) => break,
                    SessionStep::Ask(q) => engine.answer(id, dag.reaches(q, z)).unwrap(),
                }
            }
            rows.push((id, kind, z));
        }
    }
    assert!(
        engine.stats().compiled_hits > 0,
        "pre-crash state must exercise the compiled tier"
    );
    drop(engine); // crash

    let (recovered, report) = SearchEngine::recover_with(EngineConfig {
        compiled: recover_tier,
        durability: Some(DurabilityConfig::new(&dir)),
        ..EngineConfig::default()
    })
    .unwrap();
    assert_eq!(report.sessions_failed, 0, "{:?}", report.anomalies);
    assert_eq!(report.sessions, rows.len());

    // Every recovered session finishes bit-identically to an uncrashed
    // control replaying the same truthful oracle.
    for (id, kind, z) in rows {
        let (_, out) = drive_to_end(&recovered, id, &dag, z);
        let cid = control.open_session(control_plan, kind).unwrap().id();
        let (_, want) = drive_to_end(&control, cid, &dag, z);
        assert_eq!(out.target, want.target, "{kind:?} target {z}");
        assert_eq!(out.queries, want.queries, "{kind:?} target {z}");
        assert_eq!(
            out.price.to_bits(),
            want.price.to_bits(),
            "{kind:?} target {z}"
        );
    }
    let rs = recovered.stats();
    match recover_tier {
        CompiledTier::Off => assert_eq!(rs.compiled_hits, 0),
        _ => assert!(rs.compiled_hits > 0, "recovery abandoned the compiled tier"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compiled_sessions_crash_recover_through_sharded_wal() {
    crash_recover_differential("compiled-recover", CompiledTier::PerPlan);
}

#[test]
fn compiled_tagged_sessions_recover_live_when_tier_is_off() {
    crash_recover_differential("compiled-recover-off", CompiledTier::Off);
}
