//! Engine behaviour: lifecycle, admission, eviction, pooling, isolation,
//! and concurrent multi-threaded driving.

use std::sync::Arc;

use aigs_core::{CoreError, NodeWeights, SessionStep};
use aigs_graph::generate::{random_dag, random_tree, DagConfig, TreeConfig};
use aigs_graph::{Dag, NodeId};
use aigs_service::{
    CompiledTier, EngineConfig, PlanSpec, PolicyKind, SearchEngine, ServiceError, SessionId,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn tree_plan(n: usize, seed: u64) -> (Arc<Dag>, Arc<NodeWeights>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let dag = Arc::new(random_tree(&TreeConfig::bushy(n), &mut rng));
    let weights = Arc::new(weights_for(n, seed ^ 0x5eed));
    (dag, weights)
}

fn dag_plan(n: usize, seed: u64) -> (Arc<Dag>, Arc<NodeWeights>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let dag = Arc::new(random_dag(&DagConfig::bushy(n, 0.15), &mut rng));
    let nn = dag.node_count();
    let weights = Arc::new(weights_for(nn, seed ^ 0x5eed));
    (dag, weights)
}

fn weights_for(n: usize, seed: u64) -> NodeWeights {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    NodeWeights::from_masses((0..n).map(|_| rng.gen_range(0.01..1.0)).collect()).unwrap()
}

/// Drives session `id` to completion with truthful answers for `target`.
fn drive(engine: &SearchEngine, id: SessionId, dag: &Dag, target: NodeId) -> NodeId {
    let mut session = engine.session(id);
    loop {
        match session.next_question().unwrap() {
            SessionStep::Resolved(_) => return session.finish().unwrap().target,
            SessionStep::Ask(q) => session.answer(dag.reaches(q, target)).unwrap(),
        }
    }
}

#[test]
fn interleaved_sessions_resolve_their_own_targets() {
    let (dag, weights) = dag_plan(120, 7);
    let engine = SearchEngine::default();
    let plan = engine
        .register_plan(PlanSpec::new(dag.clone(), weights))
        .unwrap();

    // Open one session per node, all suspended at once, then advance them
    // round-robin one question at a time — the serving pattern.
    let targets: Vec<NodeId> = dag.nodes().collect();
    let mut live: Vec<(SessionId, NodeId)> = targets
        .iter()
        .map(|&z| {
            let s = engine.open_session(plan, PolicyKind::GreedyDag).unwrap();
            (s.id(), z)
        })
        .collect();
    assert_eq!(engine.live_sessions(), targets.len());

    while !live.is_empty() {
        let mut still = Vec::with_capacity(live.len());
        for (id, z) in live {
            match engine.next_question(id).unwrap() {
                SessionStep::Resolved(got) => {
                    assert_eq!(got, z);
                    let out = engine.finish(id).unwrap();
                    assert_eq!(out.target, z);
                    assert_eq!(out.price, out.queries as f64);
                }
                SessionStep::Ask(q) => {
                    engine.answer(id, dag.reaches(q, z)).unwrap();
                    still.push((id, z));
                }
            }
        }
        live = still;
    }
    let stats = engine.stats();
    assert_eq!(engine.live_sessions(), 0);
    assert_eq!(stats.finished, targets.len() as u64);
    assert_eq!(stats.peak_live, targets.len());
}

#[test]
fn sequential_sessions_reuse_pooled_policies() {
    let (dag, weights) = dag_plan(80, 29);
    // Pin the live tier: this test asserts pool internals, which compiled
    // sessions (under AIGS_COMPILED=1) never touch.
    let engine = SearchEngine::new(EngineConfig {
        compiled: CompiledTier::PerPlan,
        ..EngineConfig::default()
    });
    let plan = engine
        .register_plan(PlanSpec::new(dag.clone(), weights))
        .unwrap();
    for z in dag.nodes() {
        let id = engine
            .open_session(plan, PolicyKind::GreedyDag)
            .unwrap()
            .id();
        assert_eq!(drive(&engine, id, &dag, z), z);
    }
    let stats = engine.stats();
    // Every open after the first found a warm instance: reset is the O(Δ)
    // journal unwind, not an O(n) rebuild.
    assert_eq!(stats.pool_hits, stats.opened - 1);
}

#[test]
fn stale_and_foreign_ids_are_rejected() {
    let (dag, weights) = tree_plan(30, 1);
    let engine = SearchEngine::default();
    let plan = engine
        .register_plan(PlanSpec::new(dag.clone(), weights))
        .unwrap();
    let id = engine
        .open_session(plan, PolicyKind::GreedyTree)
        .unwrap()
        .id();
    drive(&engine, id, &dag, dag.root());
    // Finished: id is stale even though the slot will be reused.
    assert!(matches!(
        engine.next_question(id),
        Err(ServiceError::UnknownSession(_))
    ));
    let id2 = engine
        .open_session(plan, PolicyKind::GreedyTree)
        .unwrap()
        .id();
    // The recycled slot does not resurrect the old id.
    assert!(matches!(
        engine.answer(id, true),
        Err(ServiceError::UnknownSession(_))
    ));
    engine.cancel(id2).unwrap();
    assert!(matches!(
        engine.cancel(id2),
        Err(ServiceError::UnknownSession(_))
    ));

    // A sibling engine rejects this engine's session ids outright, even
    // when it holds a live session at the same slot index and generation.
    let (dag_b, weights_b) = tree_plan(30, 2);
    let sibling = SearchEngine::default();
    let plan_b = sibling
        .register_plan(PlanSpec::new(dag_b, weights_b))
        .unwrap();
    let live_b = sibling
        .open_session(plan_b, PolicyKind::GreedyTree)
        .unwrap()
        .id();
    let live_a = engine
        .open_session(plan, PolicyKind::GreedyTree)
        .unwrap()
        .id();
    assert!(matches!(
        sibling.next_question(live_a),
        Err(ServiceError::UnknownSession(_))
    ));
    assert!(matches!(
        engine.cancel(live_b),
        Err(ServiceError::UnknownSession(_))
    ));
}

#[test]
fn unknown_plan_is_rejected() {
    // The victim engine registers its own plan at index 0, so a foreign
    // PlanId would resolve by position — the engine scope must reject it.
    let (dag, weights) = tree_plan(20, 3);
    let engine = SearchEngine::default();
    engine.register_plan(PlanSpec::new(dag, weights)).unwrap();
    let foreign = aigs_service::SearchEngine::default()
        .register_plan(PlanSpec::new(
            Arc::new(aigs_graph::dag_from_edges(2, &[(0, 1)]).unwrap()),
            Arc::new(NodeWeights::uniform(2)),
        ))
        .unwrap();
    let err = engine
        .open_session(foreign, PolicyKind::TopDown)
        .unwrap_err();
    assert!(matches!(err, ServiceError::UnknownPlan(_)));
}

#[test]
fn oversized_optimal_is_isolated() {
    // An exact-DP session on a 40-node instance must fail its own open with
    // TooLargeForExact — and leave the engine fully serviceable.
    let (dag, weights) = tree_plan(40, 3);
    let engine = SearchEngine::default();
    let plan = engine
        .register_plan(PlanSpec::new(dag.clone(), weights))
        .unwrap();

    let healthy = engine
        .open_session(plan, PolicyKind::GreedyTree)
        .unwrap()
        .id();

    let err = engine.open_session(plan, PolicyKind::Optimal).unwrap_err();
    assert!(matches!(
        err,
        ServiceError::Core(CoreError::TooLargeForExact { nodes: 40, .. })
    ));
    assert_eq!(engine.stats().errored, 1);

    // The poisoned open reserved no capacity and broke nothing: the healthy
    // session still runs, and new sessions still open.
    assert_eq!(engine.live_sessions(), 1);
    let z = NodeId::new(17);
    assert_eq!(drive(&engine, healthy, &dag, z), z);
    let id = engine
        .open_session(plan, PolicyKind::GreedyTree)
        .unwrap()
        .id();
    assert_eq!(drive(&engine, id, &dag, dag.root()), dag.root());
}

#[test]
fn tree_policy_on_dag_plan_is_isolated() {
    let (dag, weights) = dag_plan(50, 9);
    assert!(!dag.is_tree());
    let engine = SearchEngine::default();
    let plan = engine.register_plan(PlanSpec::new(dag, weights)).unwrap();
    let err = engine
        .open_session(plan, PolicyKind::GreedyTree)
        .unwrap_err();
    assert!(matches!(err, ServiceError::Core(CoreError::NotATree)));
    // GreedyDag on the same plan is fine.
    engine.open_session(plan, PolicyKind::GreedyDag).unwrap();
}

#[test]
fn diverged_session_is_torn_down_alone() {
    let (dag, weights) = tree_plan(60, 5);
    let engine = SearchEngine::new(EngineConfig {
        max_queries: Some(1),
        ..EngineConfig::default()
    });
    let plan = engine
        .register_plan(PlanSpec::new(dag.clone(), weights))
        .unwrap();

    let sibling = engine
        .open_session(plan, PolicyKind::GreedyTree)
        .unwrap()
        .id();

    let mut doomed = engine.open_session(plan, PolicyKind::GreedyTree).unwrap();
    let doomed_id = doomed.id();
    // Burn the single allowed query on a deliberately unhelpful answer.
    let SessionStep::Ask(_) = doomed.next_question().unwrap() else {
        panic!("fresh session should ask");
    };
    doomed.answer(false).unwrap();
    // The next request exceeds the cap: Diverged, and the session is gone.
    let err = match doomed.next_question() {
        Ok(SessionStep::Ask(_)) => panic!("cap of 1 must not allow a second question"),
        Ok(SessionStep::Resolved(_)) => panic!("one `no` cannot resolve 60 nodes"),
        Err(e) => e,
    };
    assert!(matches!(
        err,
        ServiceError::Core(CoreError::Diverged { limit: 1, .. })
    ));
    assert!(matches!(
        engine.next_question(doomed_id),
        Err(ServiceError::UnknownSession(_))
    ));
    // The sibling session is untouched and still completes (within its own
    // cap: pick the root, resolvable only if the policy asks... instead just
    // verify it still answers protocol-correctly and can be cancelled).
    assert!(matches!(
        engine.next_question(sibling),
        Ok(SessionStep::Ask(_))
    ));
    engine.cancel(sibling).unwrap();
    assert_eq!(engine.live_sessions(), 0);
}

#[test]
fn misuse_is_recoverable() {
    let (dag, weights) = tree_plan(25, 11);
    let engine = SearchEngine::default();
    let plan = engine
        .register_plan(PlanSpec::new(dag.clone(), weights))
        .unwrap();
    let mut s = engine.open_session(plan, PolicyKind::Wigs).unwrap();
    // Answer before any question: typed error, session survives.
    assert!(matches!(
        s.answer(true),
        Err(ServiceError::Core(CoreError::SessionMisuse(_)))
    ));
    // Premature finish: same.
    assert!(matches!(
        engine.finish(s.id()),
        Err(ServiceError::Core(CoreError::SessionMisuse(_)))
    ));
    // Asking twice without answering returns the same question.
    let SessionStep::Ask(q1) = s.next_question().unwrap() else {
        panic!("should ask");
    };
    let SessionStep::Ask(q2) = s.next_question().unwrap() else {
        panic!("should still ask");
    };
    assert_eq!(q1, q2);
    let z = NodeId::new(13);
    let id = s.id();
    s.answer(dag.reaches(q1, z)).unwrap();
    assert_eq!(drive(&engine, id, &dag, z), z);
}

#[test]
fn admission_limit_and_idle_eviction() {
    let (dag, weights) = tree_plan(30, 13);
    let engine = SearchEngine::new(EngineConfig {
        max_sessions: 4,
        idle_ticks: Some(64),
        ..EngineConfig::default()
    });
    let plan = engine
        .register_plan(PlanSpec::new(dag.clone(), weights))
        .unwrap();

    let abandoned: Vec<SessionId> = (0..4)
        .map(|_| {
            engine
                .open_session(plan, PolicyKind::GreedyTree)
                .unwrap()
                .id()
        })
        .collect();
    // Full, and nothing is idle yet: admission fails, but the refusal says
    // a retry can work (idle eviction is on) and reports how old the
    // oldest session is.
    match engine.open_session(plan, PolicyKind::GreedyTree) {
        Err(ServiceError::AtCapacity {
            live: 4,
            limit: 4,
            retryable: true,
            oldest_idle: Some(_),
        }) => {}
        other => panic!("expected a retryable AtCapacity refusal, got {other:?}"),
    }

    // Keep one session active while the clock advances past the idle
    // threshold for the other three.
    let active = abandoned[0];
    for _ in 0..70 {
        let _ = engine.next_question(active).unwrap();
    }
    // Admission now reclaims the idle three automatically.
    let fresh = engine.open_session(plan, PolicyKind::GreedyTree).unwrap();
    assert_eq!(engine.stats().evicted, 3);
    assert_eq!(engine.live_sessions(), 2);
    // Evicted ids are dead; the survivor and the newcomer work.
    for &id in &abandoned[1..] {
        assert!(matches!(
            engine.next_question(id),
            Err(ServiceError::UnknownSession(_))
        ));
    }
    let z = NodeId::new(7);
    assert_eq!(drive(&engine, active, &dag, z), z);
    let fresh_id = fresh.id();
    assert_eq!(drive(&engine, fresh_id, &dag, z), z);
}

#[test]
fn random_policy_sessions_complete() {
    let (dag, weights) = dag_plan(40, 17);
    let engine = SearchEngine::default();
    let plan = engine
        .register_plan(PlanSpec::new(dag.clone(), weights))
        .unwrap();
    for (i, z) in dag.nodes().enumerate() {
        let id = engine
            .open_session(plan, PolicyKind::Random { seed: i as u64 })
            .unwrap()
            .id();
        assert_eq!(drive(&engine, id, &dag, z), z);
    }
}

#[test]
fn concurrent_threads_share_one_engine() {
    let (dag, weights) = dag_plan(200, 23);
    let engine = SearchEngine::default();
    let plan = engine
        .register_plan(PlanSpec::new(dag.clone(), weights))
        .unwrap();
    let threads = 8;
    let per_thread = 64;

    std::thread::scope(|scope| {
        for t in 0..threads {
            let engine = &engine;
            let dag = &dag;
            scope.spawn(move || {
                let mut rng = ChaCha8Rng::seed_from_u64(t as u64);
                let kinds = [
                    PolicyKind::TopDown,
                    PolicyKind::Wigs,
                    PolicyKind::GreedyDag,
                    PolicyKind::Migs,
                ];
                // Each thread interleaves a batch of its own sessions.
                let mut batch: Vec<(SessionId, NodeId)> = (0..per_thread)
                    .map(|i| {
                        let z = NodeId::new(rng.gen_range(0..dag.node_count()));
                        let kind = kinds[i % kinds.len()];
                        (engine.open_session(plan, kind).unwrap().id(), z)
                    })
                    .collect();
                while !batch.is_empty() {
                    let mut still = Vec::with_capacity(batch.len());
                    for (id, z) in batch {
                        match engine.next_question(id).unwrap() {
                            SessionStep::Resolved(got) => {
                                assert_eq!(got, z);
                                engine.finish(id).unwrap();
                            }
                            SessionStep::Ask(q) => {
                                engine.answer(id, dag.reaches(q, z)).unwrap();
                                still.push((id, z));
                            }
                        }
                    }
                    batch = still;
                }
            });
        }
    });

    let stats = engine.stats();
    assert_eq!(stats.live, 0);
    assert_eq!(stats.opened, (threads * per_thread) as u64);
    assert_eq!(stats.finished, stats.opened);
    assert!(stats.peak_live >= per_thread);
}
