//! The service layer's core correctness property: a stepwise
//! [`SessionHandle`] produces the **bit-identical** query transcript, query
//! count and price as the inline [`run_session`] loop — for every policy
//! kind, every reachability backend, and every target, on random DAGs and
//! trees with heterogeneous prices.
//!
//! This is what licenses serving searches suspended: suspension changes
//! *when* answers arrive, never *what* is asked.

use std::sync::Arc;

use aigs_core::{run_session, SearchContext, SessionStep, TargetOracle, TranscriptOracle};
use aigs_graph::{Dag, NodeId, ReachIndex};
use aigs_service::{PlanSpec, PolicyKind, ReachChoice, SearchEngine, SessionHandle};
use aigs_testutil::{dag_from_seed, generic_prices, generic_weights, tree_from_seed};
use proptest::prelude::*;

/// The policy kinds a service would offer for this hierarchy shape.
/// `Optimal` participates only within its exact-solver size cap; `Random`
/// checks that even the seeded baseline steps identically.
fn kinds(is_tree: bool, n: usize) -> Vec<PolicyKind> {
    let mut v = vec![
        PolicyKind::TopDown,
        PolicyKind::Migs,
        PolicyKind::Wigs,
        PolicyKind::GreedyDag,
        PolicyKind::GreedyNaive,
        PolicyKind::CostSensitive,
        PolicyKind::Random { seed: 0xfeed },
    ];
    if is_tree {
        v.push(PolicyKind::GreedyTree);
    }
    if n <= aigs_core::MAX_EXACT_NODES {
        v.push(PolicyKind::Optimal);
    }
    v
}

/// Every backend choice, with the reference [`ReachIndex`] built the exact
/// same way the plan builds it. Honours `AIGS_TEST_BACKEND` (the CI
/// backend matrix) by narrowing to the named choice; the `auto` tier runs
/// only in unforced runs.
fn backends(dag: &Dag, seed: u64) -> Vec<(&'static str, ReachChoice, Option<ReachIndex>)> {
    let all: Vec<(&'static str, ReachChoice, Option<ReachIndex>)> = vec![
        (
            "auto",
            ReachChoice::Auto,
            if dag.is_tree() {
                None
            } else {
                Some(ReachIndex::auto(dag))
            },
        ),
        (
            "closure",
            ReachChoice::Closure,
            Some(ReachIndex::closure_for(dag)),
        ),
        (
            "interval",
            ReachChoice::Interval {
                labelings: 2,
                seed: seed ^ 0xbeef,
            },
            Some(ReachIndex::interval_for(dag, 2, seed ^ 0xbeef)),
        ),
        ("bfs", ReachChoice::Bfs, Some(ReachIndex::Bfs)),
        ("none", ReachChoice::None, None),
    ];
    match aigs_testutil::forced_backend() {
        None => all,
        Some(want) => all
            .into_iter()
            .filter(|(name, _, _)| *name == want)
            .collect(),
    }
}

/// Steps `session` to completion with truthful answers for `target`,
/// recording the transcript.
fn drive_stepwise(
    mut session: SessionHandle<'_>,
    dag: &Dag,
    target: NodeId,
) -> Result<(Vec<(NodeId, bool)>, aigs_core::SearchOutcome), TestCaseError> {
    let mut transcript = Vec::new();
    loop {
        match session
            .next_question()
            .map_err(|e| TestCaseError::fail(format!("next_question failed: {e}")))?
        {
            SessionStep::Resolved(_) => {
                let out = session
                    .finish()
                    .map_err(|e| TestCaseError::fail(format!("finish failed: {e}")))?;
                return Ok((transcript, out));
            }
            SessionStep::Ask(q) => {
                let yes = dag.reaches(q, target);
                transcript.push((q, yes));
                session
                    .answer(yes)
                    .map_err(|e| TestCaseError::fail(format!("answer failed: {e}")))?;
            }
        }
    }
}

fn check_all(dag: Arc<Dag>, seed: u64) -> Result<(), TestCaseError> {
    let n = dag.node_count();
    let weights = Arc::new(generic_weights(n, seed));
    let costs = Arc::new(generic_prices(n, seed));

    for (_name, choice, reference_index) in backends(&dag, seed) {
        let engine = SearchEngine::default();
        let plan = engine
            .register_plan(
                PlanSpec::new(dag.clone(), weights.clone())
                    .with_costs(costs.clone())
                    .with_reach(choice),
            )
            .unwrap();
        for kind in kinds(dag.is_tree(), n) {
            for z in dag.nodes() {
                // Inline reference: run_session over the same artifacts.
                let base = SearchContext::new(&dag, &weights).with_costs(&costs);
                let ctx = match &reference_index {
                    Some(ix) => base.with_reach(ix),
                    None => base,
                };
                let mut policy = kind.build();
                let mut oracle = TranscriptOracle::new(TargetOracle::new(&dag, z));
                let want = run_session(policy.as_mut(), &ctx, &mut oracle, None)
                    .map_err(|e| TestCaseError::fail(format!("{}: {e}", kind.name())))?;

                // Stepwise via the engine (pooled policies, shared plan).
                let session = engine.open_session(plan, kind).unwrap();
                let (transcript, got) = drive_stepwise(session, &dag, z)?;

                prop_assert_eq!(
                    &transcript,
                    &oracle.transcript,
                    "{} under {:?}: transcript diverged (target {})",
                    kind.name(),
                    choice,
                    z
                );
                prop_assert_eq!(got.target, want.target);
                prop_assert_eq!(got.queries, want.queries);
                prop_assert_eq!(
                    got.price.to_bits(),
                    want.price.to_bits(),
                    "{} under {:?}: price diverged (target {})",
                    kind.name(),
                    choice,
                    z
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Stepwise ≡ inline on random DAGs, every policy × backend × target.
    #[test]
    fn stepwise_equals_inline_on_dags(
        n in 2usize..20,
        frac in 0.05f64..0.4,
        seed in 0u64..10_000,
    ) {
        let dag = Arc::new(dag_from_seed(n, frac, seed));
        check_all(dag, seed)?;
    }

    /// Stepwise ≡ inline on random trees (adds GreedyTree to the roster).
    #[test]
    fn stepwise_equals_inline_on_trees(n in 2usize..20, seed in 0u64..10_000) {
        let dag = Arc::new(tree_from_seed(n, seed));
        check_all(dag, seed)?;
    }
}
