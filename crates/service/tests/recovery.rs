//! Crash-recovery integration tests (no fault injection — the injected
//! variants live in `chaos.rs`).
//!
//! The durability contract under test: dropping a durable engine at any
//! point and recovering from its log directory yields an engine whose
//! live sessions **continue bit-identically** to an uncrashed control —
//! same questions, same outcome, same price bits — while finished and
//! cancelled sessions stay dead and pre-crash ids keep working.

mod common;

use std::sync::Arc;

use aigs_core::{SessionStep, MAX_EXACT_NODES};
use aigs_graph::NodeId;
use aigs_service::{
    DurabilityConfig, EngineConfig, FsyncPolicy, PlanSpec, PolicyKind, SearchEngine, ServiceError,
    SessionId,
};
use aigs_testutil::{dag_from_seed, generic_prices, generic_weights};
use common::{drive_to_end, env_reach_choice, open_and_replay, scratch_dir};

const N: usize = 13;
const SEED: u64 = 0xA5;

fn plan_spec() -> PlanSpec {
    let dag = Arc::new(dag_from_seed(N, 0.3, SEED));
    let weights = Arc::new(generic_weights(N, SEED));
    let costs = Arc::new(generic_prices(N, SEED));
    PlanSpec::new(dag, weights)
        .with_costs(costs)
        .with_reach(env_reach_choice())
}

fn roster() -> Vec<PolicyKind> {
    let mut kinds = vec![
        PolicyKind::TopDown,
        PolicyKind::Migs,
        PolicyKind::Wigs,
        PolicyKind::GreedyDag,
        PolicyKind::GreedyNaive,
        PolicyKind::CostSensitive,
        PolicyKind::Random { seed: 0xfeed },
    ];
    if N <= MAX_EXACT_NODES {
        kinds.push(PolicyKind::Optimal);
    }
    kinds
}

fn durable_config(dir: &std::path::Path, fsync: FsyncPolicy) -> EngineConfig {
    EngineConfig {
        durability: Some(DurabilityConfig::new(dir).with_fsync(fsync)),
        ..EngineConfig::default()
    }
}

#[test]
fn recovered_sessions_continue_bit_identically() {
    let dir = scratch_dir("recover-basic");
    let spec = plan_spec();
    let dag = spec.dag.clone();
    let kinds = roster();

    // Build up mixed pre-crash state: one partially-progressed session per
    // policy kind, plus one finished and one cancelled session.
    let engine = SearchEngine::try_new(durable_config(&dir, FsyncPolicy::EveryN(4))).unwrap();
    let plan = engine.register_plan(spec.clone()).unwrap();
    type LiveRow = (SessionId, PolicyKind, NodeId, Vec<(NodeId, bool)>);
    let mut live: Vec<LiveRow> = Vec::new();
    for (i, &kind) in kinds.iter().enumerate() {
        let target = NodeId::new((i * 5 + 1) % N);
        let id = engine.open_session(plan, kind).unwrap().id();
        let mut prefix = Vec::new();
        for _ in 0..i % 4 {
            match engine.next_question(id).unwrap() {
                SessionStep::Resolved(_) => break,
                SessionStep::Ask(q) => {
                    let yes = dag.reaches(q, target);
                    prefix.push((q, yes));
                    engine.answer(id, yes).unwrap();
                }
            }
        }
        live.push((id, kind, target, prefix));
    }
    let fin_id = engine
        .open_session(plan, PolicyKind::GreedyDag)
        .unwrap()
        .id();
    let fin_target = NodeId::new(7);
    let (fin_transcript, fin_out) = drive_to_end(&engine, fin_id, &dag, fin_target);
    let can_id = engine.open_session(plan, PolicyKind::TopDown).unwrap().id();
    engine.cancel(can_id).unwrap();
    let pre_stats = engine.stats();
    assert!(pre_stats.wal_records > 0);
    assert!(!pre_stats.degraded);
    drop(engine); // crash: nothing flushed explicitly, no graceful shutdown

    let (rec, report) = SearchEngine::recover(&dir).unwrap();
    assert_eq!(report.plans, 1);
    assert_eq!(report.sessions, kinds.len());
    assert_eq!(report.sessions_failed, 0);
    assert!(report.corruptions.is_empty(), "{:?}", report.corruptions);
    assert!(report.anomalies.is_empty(), "{:?}", report.anomalies);

    // Retired sessions stay dead, even though their slots were logged.
    for dead in [fin_id, can_id] {
        assert!(matches!(
            rec.next_question(dead),
            Err(ServiceError::UnknownSession(_))
        ));
    }

    // Durable lifecycle counters survive the crash.
    let stats = rec.stats();
    assert_eq!(stats.opened, pre_stats.opened);
    assert_eq!(stats.finished, 1);
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.live, kinds.len());

    // Uncrashed control: same plan on a fresh in-memory engine.
    let control = SearchEngine::default();
    let cplan = control.register_plan(spec).unwrap();
    let cfin = open_and_replay(&control, cplan, PolicyKind::GreedyDag, &[]);
    let (ct, cout) = drive_to_end(&control, cfin, &dag, fin_target);
    assert_eq!(ct, fin_transcript, "pre-crash finish diverged from control");
    assert_eq!(cout.price.to_bits(), fin_out.price.to_bits());

    for (id, kind, target, prefix) in live {
        // The recovered engine accepts the PRE-crash id and continues.
        let (got_t, got_out) = drive_to_end(&rec, id, &dag, target);
        // Control replays the acknowledged prefix, then continues.
        let cid = open_and_replay(&control, cplan, kind, &prefix);
        let (want_t, want_out) = drive_to_end(&control, cid, &dag, target);
        assert_eq!(got_t, want_t, "{kind:?}: continuation diverged");
        assert_eq!(got_out.target, want_out.target);
        assert_eq!(got_out.queries, want_out.queries, "{kind:?}: query count");
        assert_eq!(
            got_out.price.to_bits(),
            want_out.price.to_bits(),
            "{kind:?}: price bits diverged"
        );
    }
}

#[test]
fn compaction_is_crash_safe() {
    let dir = scratch_dir("recover-compact");
    let spec = plan_spec();
    let dag = spec.dag.clone();

    let config = EngineConfig {
        durability: Some(
            DurabilityConfig::new(&dir)
                .with_fsync(FsyncPolicy::Never)
                .with_snapshot_every(Some(12)),
        ),
        ..EngineConfig::default()
    };
    let engine = SearchEngine::try_new(config).unwrap();
    let plan = engine.register_plan(spec.clone()).unwrap();

    // Plenty of full lifecycles so auto-compaction triggers repeatedly.
    for i in 0..8 {
        let id = engine
            .open_session(plan, PolicyKind::GreedyDag)
            .unwrap()
            .id();
        drive_to_end(&engine, id, &dag, NodeId::new(i % N));
    }
    // Two live sessions with partial progress, an explicit compaction, then
    // more progress that lands in the post-compaction tail.
    let a = engine.open_session(plan, PolicyKind::Wigs).unwrap().id();
    let b = engine
        .open_session(plan, PolicyKind::Random { seed: 9 })
        .unwrap()
        .id();
    let ta = NodeId::new(4);
    let tb = NodeId::new(11);
    let mut prefix_a = Vec::new();
    let mut prefix_b = Vec::new();
    for (id, target, prefix) in [(a, ta, &mut prefix_a), (b, tb, &mut prefix_b)] {
        if let SessionStep::Ask(q) = engine.next_question(id).unwrap() {
            let yes = dag.reaches(q, target);
            prefix.push((q, yes));
            engine.answer(id, yes).unwrap();
        }
    }
    engine.compact().unwrap();
    if let SessionStep::Ask(q) = engine.next_question(a).unwrap() {
        let yes = dag.reaches(q, ta);
        prefix_a.push((q, yes));
        engine.answer(a, yes).unwrap();
    }
    drop(engine); // crash

    // The compaction left the canonical two-file set in every shard dir.
    let shard_dirs: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("shard-"))
        })
        .collect();
    assert!(!shard_dirs.is_empty());
    for shard in &shard_dirs {
        assert!(shard.join("snapshot.log").exists(), "{shard:?}");
        assert!(shard.join("wal.log").exists(), "{shard:?}");
        assert!(!shard.join("wal.new.log").exists(), "{shard:?}");
        assert!(!shard.join("snapshot.new.log").exists(), "{shard:?}");
    }

    let (rec, report) = SearchEngine::recover(&dir).unwrap();
    assert_eq!(report.sessions, 2);
    assert_eq!(report.sessions_failed, 0);
    assert!(report.anomalies.is_empty(), "{:?}", report.anomalies);
    // Compaction trims retired sessions' history, so the finished counter
    // only witnesses retirements still in the log window; the live set is
    // what must be exact.
    assert_eq!(rec.live_sessions(), 2);

    let control = SearchEngine::default();
    let cplan = control.register_plan(spec).unwrap();
    for (id, kind, target, prefix) in [
        (a, PolicyKind::Wigs, ta, prefix_a),
        (b, PolicyKind::Random { seed: 9 }, tb, prefix_b),
    ] {
        let (got_t, got_out) = drive_to_end(&rec, id, &dag, target);
        let cid = open_and_replay(&control, cplan, kind, &prefix);
        let (want_t, want_out) = drive_to_end(&control, cid, &dag, target);
        assert_eq!(got_t, want_t);
        assert_eq!(got_out.price.to_bits(), want_out.price.to_bits());
    }
}

#[test]
fn repeated_crash_recover_cycles_stay_exact() {
    let dir = scratch_dir("recover-repeat");
    let spec = plan_spec();
    let dag = spec.dag.clone();
    let kind = PolicyKind::CostSensitive;
    let target = NodeId::new(9);

    // Crash → recover → progress → crash → recover: the session's full
    // transcript across both incarnations must equal one uncrashed run.
    let engine = SearchEngine::try_new(durable_config(&dir, FsyncPolicy::EveryN(2))).unwrap();
    let plan = engine.register_plan(spec.clone()).unwrap();
    let id = engine.open_session(plan, kind).unwrap().id();
    let mut transcript = Vec::new();
    if let SessionStep::Ask(q) = engine.next_question(id).unwrap() {
        let yes = dag.reaches(q, target);
        transcript.push((q, yes));
        engine.answer(id, yes).unwrap();
    }
    drop(engine);

    let (rec1, _) = SearchEngine::recover(&dir).unwrap();
    if let SessionStep::Ask(q) = rec1.next_question(id).unwrap() {
        let yes = dag.reaches(q, target);
        transcript.push((q, yes));
        rec1.answer(id, yes).unwrap();
    }
    drop(rec1);

    let (rec2, report) = SearchEngine::recover(&dir).unwrap();
    assert_eq!(report.sessions, 1);
    let (tail, out) = drive_to_end(&rec2, id, &dag, target);
    transcript.extend(tail);

    let control = SearchEngine::default();
    let cplan = control.register_plan(spec).unwrap();
    let cid = open_and_replay(&control, cplan, kind, &[]);
    let (want_t, want_out) = drive_to_end(&control, cid, &dag, target);
    assert_eq!(transcript, want_t, "stitched transcript diverged");
    assert_eq!(out.price.to_bits(), want_out.price.to_bits());
}

#[test]
fn fresh_engine_wipes_the_previous_tenants_logs() {
    let dir = scratch_dir("recover-wipe");
    let spec = plan_spec();
    let dag = spec.dag.clone();

    // Tenant A leaves live state behind…
    let a = SearchEngine::try_new(durable_config(&dir, FsyncPolicy::Never)).unwrap();
    let plan_a = a.register_plan(spec.clone()).unwrap();
    let stale = a.open_session(plan_a, PolicyKind::TopDown).unwrap().id();
    a.compact().unwrap(); // A even has a snapshot file
    drop(a);

    // …then tenant B takes over the directory with a fresh engine.
    let b = SearchEngine::try_new(durable_config(&dir, FsyncPolicy::Never)).unwrap();
    let plan_b = b.register_plan(spec).unwrap();
    let target = NodeId::new(3);
    let id = b.open_session(plan_b, PolicyKind::GreedyDag).unwrap().id();
    let mut prefix = Vec::new();
    if let SessionStep::Ask(q) = b.next_question(id).unwrap() {
        let yes = dag.reaches(q, target);
        prefix.push((q, yes));
        b.answer(id, yes).unwrap();
    }
    drop(b);

    // Recovery sees only B: A's snapshot was wiped at B's creation, and
    // A's session id carries the wrong engine nonce.
    let (rec, report) = SearchEngine::recover(&dir).unwrap();
    assert_eq!(report.plans, 1);
    assert_eq!(report.sessions, 1);
    assert!(matches!(
        rec.next_question(stale),
        Err(ServiceError::UnknownSession(_))
    ));
    let (_, out) = drive_to_end(&rec, id, &dag, target);
    assert_eq!(out.target, target);
}

/// Compaction trims retired sessions' tombstones out of the log, so the
/// snapshot must carry each empty slot's generation watermark — otherwise
/// recovery rebuilds the slot at generation 0 and a fresh open re-issues a
/// retired `(index, generation)` pair, silently routing a stale pre-crash
/// id to a stranger's session.
#[test]
fn compaction_preserves_retired_slot_generations() {
    let dir = scratch_dir("recover-stale-id");
    let spec = plan_spec();
    let dag = spec.dag.clone();

    let engine = SearchEngine::try_new(durable_config(&dir, FsyncPolicy::Never)).unwrap();
    let plan = engine.register_plan(spec).unwrap();
    let stale = engine
        .open_session(plan, PolicyKind::GreedyDag)
        .unwrap()
        .id();
    drive_to_end(&engine, stale, &dag, NodeId::new(5)); // finish retires slot 0
    engine.compact().unwrap(); // trims the open/answer/finish history
    drop(engine); // crash

    let (rec, _) = SearchEngine::recover(&dir).unwrap();
    assert!(matches!(
        rec.next_question(stale),
        Err(ServiceError::UnknownSession(_))
    ));
    // Reopening reuses the slot on the restored engine identity, but must
    // never re-issue the retired pair…
    let fresh = rec.open_session(plan, PolicyKind::GreedyDag).unwrap().id();
    assert_ne!(
        fresh, stale,
        "retired id re-issued after compaction + recovery"
    );
    // …so the stale pre-crash id still routes nowhere.
    assert!(matches!(
        rec.next_question(stale),
        Err(ServiceError::UnknownSession(_))
    ));
    assert!(matches!(
        rec.answer(stale, true),
        Err(ServiceError::UnknownSession(_))
    ));

    // The snapshot recovery itself republishes must preserve watermarks
    // too: retire the new tenant, then crash → recover → crash with no
    // traffic in between, so the republished snapshot (plus its fresh
    // empty tail) is the only surviving history.
    drive_to_end(&rec, fresh, &dag, NodeId::new(3));
    drop(rec);
    let (rec2, _) = SearchEngine::recover(&dir).unwrap();
    drop(rec2);
    let (rec3, _) = SearchEngine::recover(&dir).unwrap();
    let third = rec3.open_session(plan, PolicyKind::TopDown).unwrap().id();
    assert_ne!(third, stale);
    assert_ne!(third, fresh);
    for dead in [stale, fresh] {
        assert!(matches!(
            rec3.next_question(dead),
            Err(ServiceError::UnknownSession(_))
        ));
    }
}

#[test]
fn legacy_v1_log_is_migrated_and_continues_bit_identically() {
    use aigs_data::wal::{read_wal, SessionWal, WalEvent};

    let dir = scratch_dir("recover-legacy-v1");
    let spec = plan_spec();
    let dag = spec.dag.clone();

    // Build pre-crash state on a 1-shard durable engine — the only shape
    // PR 6's v1 single-directory format could express.
    let engine = SearchEngine::try_new(EngineConfig {
        shards: 1,
        ..durable_config(&dir, FsyncPolicy::Always)
    })
    .unwrap();
    let plan = engine.register_plan(spec.clone()).unwrap();
    let kinds = [
        PolicyKind::TopDown,
        PolicyKind::Migs,
        PolicyKind::Random { seed: 0xfeed },
    ];
    type LiveRow = (SessionId, PolicyKind, NodeId, Vec<(NodeId, bool)>);
    let mut live: Vec<LiveRow> = Vec::new();
    for (i, &kind) in kinds.iter().enumerate() {
        let target = NodeId::new((i * 4 + 2) % N);
        let id = engine.open_session(plan, kind).unwrap().id();
        let mut prefix = Vec::new();
        for _ in 0..=i {
            match engine.next_question(id).unwrap() {
                SessionStep::Resolved(_) => break,
                SessionStep::Ask(q) => {
                    let yes = dag.reaches(q, target);
                    prefix.push((q, yes));
                    engine.answer(id, yes).unwrap();
                }
            }
        }
        live.push((id, kind, target, prefix));
    }
    drop(engine); // crash

    // Rewrite the shard-0 log as a faithful v1 layout: the same events
    // (the format bump only added ShardMeta), a version-1 header, no
    // ShardMeta records, and the files directly under the base directory.
    let shard0 = dir.join("shard-0");
    let mut events = Vec::new();
    for name in ["snapshot.log", "wal.log", "wal.new.log"] {
        let path = shard0.join(name);
        if path.exists() {
            let read = read_wal(&path).unwrap();
            assert!(read.corruption.is_none());
            events.extend(read.events);
        }
    }
    assert!(!events.is_empty());
    let mut legacy = SessionWal::create(dir.join("wal.log"), FsyncPolicy::Always).unwrap();
    for event in &events {
        match event {
            WalEvent::EngineMeta { engine_id, .. } => {
                legacy
                    .append(&WalEvent::EngineMeta {
                        version: 1,
                        engine_id: *engine_id,
                    })
                    .unwrap();
            }
            WalEvent::ShardMeta { .. } => {}
            other => {
                legacy.append(other).unwrap();
            }
        }
    }
    drop(legacy);
    std::fs::remove_dir_all(&shard0).unwrap();

    // Recovery migrates the layout in place and replays the v1 events.
    let (rec, report) = SearchEngine::recover(&dir).unwrap();
    assert_eq!(report.shards, 1);
    assert_eq!(report.sessions, live.len());
    assert_eq!(report.sessions_failed, 0);
    assert!(report.corruptions.is_empty(), "{:?}", report.corruptions);
    assert!(shard0.join("wal.log").exists());
    assert!(!dir.join("wal.log").exists());

    // Recovered sessions continue bit-identically to an uncrashed control.
    let control = SearchEngine::default();
    let cplan = control.register_plan(spec).unwrap();
    for (id, kind, target, prefix) in live {
        let (got_t, got_out) = drive_to_end(&rec, id, &dag, target);
        let cid = open_and_replay(&control, cplan, kind, &prefix);
        let (want_t, want_out) = drive_to_end(&control, cid, &dag, target);
        assert_eq!(got_t, want_t, "{kind:?}: continuation diverged");
        assert_eq!(got_out.target, want_out.target);
        assert_eq!(
            got_out.price.to_bits(),
            want_out.price.to_bits(),
            "{kind:?}: price bits diverged"
        );
    }

    // The migrated directory now recovers as an ordinary v2 layout.
    drop(rec);
    let (rec2, report2) = SearchEngine::recover(&dir).unwrap();
    assert!(report2.anomalies.is_empty(), "{:?}", report2.anomalies);
    drop(rec2);
}

#[test]
fn recovery_error_paths_are_typed() {
    // recover_with demands a durability config…
    let err = SearchEngine::recover_with(EngineConfig::default()).unwrap_err();
    assert!(matches!(err, ServiceError::Durability(_)));
    // …and an empty directory has nothing to recover from.
    let err = SearchEngine::recover(scratch_dir("recover-empty")).unwrap_err();
    assert!(matches!(err, ServiceError::Durability(_)));
}
