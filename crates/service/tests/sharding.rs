//! Shard-count invariance: the number of shards is a *placement* decision
//! and must never be observable in what a session asks, answers, or
//! charges. Every test here pins `EngineConfig::shards` explicitly (the
//! bench host may resolve auto-sharding to 1) and compares N-shard
//! engines against a 1-shard engine and the inline [`run_session`] loop.

mod common;

use std::sync::Arc;

use aigs_core::{
    run_session, SearchContext, SessionStep, TargetOracle, TranscriptOracle, MAX_EXACT_NODES,
};
use aigs_graph::NodeId;
use aigs_service::{
    DurabilityConfig, EngineConfig, FsyncPolicy, PlanSpec, PolicyKind, SearchEngine, ServiceError,
};
use aigs_testutil::{dag_from_seed, generic_prices, generic_weights};
use common::{drive_to_end, env_reach_choice, open_and_replay, scratch_dir};

const N: usize = 17;
const SEED: u64 = 0x517;

fn plan_spec() -> PlanSpec {
    let dag = Arc::new(dag_from_seed(N, 0.25, SEED));
    let weights = Arc::new(generic_weights(N, SEED));
    let costs = Arc::new(generic_prices(N, SEED));
    PlanSpec::new(dag, weights)
        .with_costs(costs)
        .with_reach(env_reach_choice())
}

fn roster() -> Vec<PolicyKind> {
    let mut kinds = vec![
        PolicyKind::TopDown,
        PolicyKind::Migs,
        PolicyKind::Wigs,
        PolicyKind::GreedyDag,
        PolicyKind::GreedyNaive,
        PolicyKind::CostSensitive,
        PolicyKind::Random { seed: 0xfeed },
    ];
    if N <= MAX_EXACT_NODES {
        kinds.push(PolicyKind::Optimal);
    }
    kinds
}

fn sharded_engine(shards: usize) -> (SearchEngine, aigs_service::PlanId) {
    let engine = SearchEngine::new(EngineConfig {
        shards,
        ..EngineConfig::default()
    });
    let plan = engine.register_plan(plan_spec()).unwrap();
    (engine, plan)
}

/// Every policy kind, stepped on a 5-shard engine, a 1-shard engine, and
/// the inline loop: bit-identical transcripts, query counts, and prices.
#[test]
fn transcripts_are_shard_count_invariant() {
    let spec = plan_spec();
    let dag = spec.dag.clone();
    let weights = spec.weights.clone();
    let costs = spec.costs.clone();
    let (many, plan_many) = sharded_engine(5);
    let (one, plan_one) = sharded_engine(1);
    assert_eq!(many.stats().shards, 5);
    assert_eq!(one.stats().shards, 1);

    for (i, kind) in roster().into_iter().enumerate() {
        for target in [NodeId::new(i % N), NodeId::new((i * 7 + 3) % N)] {
            // Inline reference over the same artifacts.
            let ctx = SearchContext::new(&dag, &weights).with_costs(&costs);
            let mut policy = kind.build();
            let mut oracle = TranscriptOracle::new(TargetOracle::new(&dag, target));
            let want = run_session(policy.as_mut(), &ctx, &mut oracle, None).unwrap();

            let id_many = many.open_session(plan_many, kind).unwrap().id();
            let (t_many, out_many) = drive_to_end(&many, id_many, &dag, target);
            let id_one = one.open_session(plan_one, kind).unwrap().id();
            let (t_one, out_one) = drive_to_end(&one, id_one, &dag, target);

            assert_eq!(t_many, oracle.transcript, "{kind:?}: 5-shard vs inline");
            assert_eq!(t_one, oracle.transcript, "{kind:?}: 1-shard vs inline");
            for out in [&out_many, &out_one] {
                assert_eq!(out.target, want.target, "{kind:?}");
                assert_eq!(out.queries, want.queries, "{kind:?}");
                assert_eq!(out.price.to_bits(), want.price.to_bits(), "{kind:?}");
            }
        }
    }
}

/// Interleaved sessions across shards stay isolated: ids are unique, each
/// routes to its own session, and stats aggregate across all shards.
#[test]
fn interleaved_sessions_stay_isolated_across_shards() {
    let spec = plan_spec();
    let dag = spec.dag.clone();
    let (engine, plan) = sharded_engine(4);

    // Open 16 sessions (4 placement round-robins), interleave one step
    // each, then drive each to completion in reverse open order.
    let mut rows = Vec::new();
    for i in 0..16 {
        let target = NodeId::new((i * 3 + 1) % N);
        let id = engine
            .open_session(plan, PolicyKind::GreedyDag)
            .unwrap()
            .id();
        rows.push((id, target, Vec::new()));
    }
    let ids: Vec<_> = rows.iter().map(|r| r.0).collect();
    assert_eq!(
        ids.iter().collect::<std::collections::HashSet<_>>().len(),
        ids.len(),
        "session ids must be globally unique across shards"
    );
    for (id, target, prefix) in rows.iter_mut() {
        if let SessionStep::Ask(q) = engine.next_question(*id).unwrap() {
            let yes = dag.reaches(q, *target);
            prefix.push((q, yes));
            engine.answer(*id, yes).unwrap();
        }
    }
    assert_eq!(engine.live_sessions(), 16);

    let control = SearchEngine::default();
    let cplan = control.register_plan(spec).unwrap();
    for (id, target, prefix) in rows.into_iter().rev() {
        let (got_t, got_out) = drive_to_end(&engine, id, &dag, target);
        let cid = open_and_replay(&control, cplan, PolicyKind::GreedyDag, &prefix);
        let (want_t, want_out) = drive_to_end(&control, cid, &dag, target);
        assert_eq!(got_t, want_t);
        assert_eq!(got_out.price.to_bits(), want_out.price.to_bits());
    }
    let stats = engine.stats();
    assert_eq!(stats.live, 0);
    assert_eq!(stats.opened, 16);
    assert_eq!(stats.finished, 16);
    assert_eq!(stats.peak_live, 16);
    assert_eq!(stats.shards, 4);
}

/// Crash + recover on a multi-shard directory: recovery discovers the
/// shard count from the layout (ignoring the configured value), replays
/// every shard, and each surviving session continues bit-identically to
/// an uncrashed 1-shard control.
#[test]
fn crash_recovery_is_bit_identical_across_shard_counts() {
    let dir = scratch_dir("shard-recover");
    let spec = plan_spec();
    let dag = spec.dag.clone();
    let kinds = roster();

    let engine = SearchEngine::try_new(EngineConfig {
        shards: 3,
        durability: Some(DurabilityConfig::new(&dir).with_fsync(FsyncPolicy::EveryN(4))),
        ..EngineConfig::default()
    })
    .unwrap();
    let plan = engine.register_plan(spec.clone()).unwrap();
    let mut live = Vec::new();
    for (i, &kind) in kinds.iter().enumerate() {
        let target = NodeId::new((i * 5 + 2) % N);
        let id = engine.open_session(plan, kind).unwrap().id();
        let mut prefix = Vec::new();
        for _ in 0..i % 4 {
            match engine.next_question(id).unwrap() {
                SessionStep::Resolved(_) => break,
                SessionStep::Ask(q) => {
                    let yes = dag.reaches(q, target);
                    prefix.push((q, yes));
                    engine.answer(id, yes).unwrap();
                }
            }
        }
        live.push((id, kind, target, prefix));
    }
    drop(engine); // crash

    for k in 0..3 {
        assert!(
            dir.join(format!("shard-{k}")).join("wal.log").exists(),
            "shard-{k} tail missing"
        );
    }

    // Recover with a *different* configured shard count: the directory
    // layout must win, or shard-local indices would alias.
    let (rec, report) = SearchEngine::recover_with(EngineConfig {
        shards: 8,
        durability: Some(DurabilityConfig::new(&dir)),
        ..EngineConfig::default()
    })
    .unwrap();
    assert_eq!(report.shards, 3);
    assert_eq!(rec.stats().shards, 3);
    assert_eq!(report.sessions, kinds.len());
    assert_eq!(report.sessions_failed, 0);
    assert!(report.corruptions.is_empty(), "{:?}", report.corruptions);
    assert!(report.anomalies.is_empty(), "{:?}", report.anomalies);

    let control = SearchEngine::new(EngineConfig {
        shards: 1,
        ..EngineConfig::default()
    });
    let cplan = control.register_plan(spec).unwrap();
    for (id, kind, target, prefix) in live {
        let (got_t, got_out) = drive_to_end(&rec, id, &dag, target);
        let cid = open_and_replay(&control, cplan, kind, &prefix);
        let (want_t, want_out) = drive_to_end(&control, cid, &dag, target);
        assert_eq!(got_t, want_t, "{kind:?}: continuation diverged");
        assert_eq!(got_out.queries, want_out.queries, "{kind:?}");
        assert_eq!(
            got_out.price.to_bits(),
            want_out.price.to_bits(),
            "{kind:?}"
        );
    }
}

/// Admission control is global: a 4-shard engine with `max_sessions = 6`
/// refuses the 7th open with an exact live count, and idle eviction off
/// the per-shard heaps frees the least-recently-touched session no matter
/// which shard holds it.
#[test]
fn admission_limit_and_idle_eviction_span_shards() {
    let spec = plan_spec();
    let dag = spec.dag.clone();
    let engine = SearchEngine::new(EngineConfig {
        shards: 4,
        max_sessions: 6,
        idle_ticks: Some(8),
        ..EngineConfig::default()
    });
    let plan = engine.register_plan(spec).unwrap();

    let mut ids = Vec::new();
    for _ in 0..6 {
        ids.push(engine.open_session(plan, PolicyKind::TopDown).unwrap().id());
    }
    match engine.open_session(plan, PolicyKind::TopDown) {
        Err(ServiceError::AtCapacity {
            live,
            limit,
            retryable,
            oldest_idle,
        }) => {
            assert_eq!(live, 6);
            assert_eq!(limit, 6);
            assert!(retryable);
            assert!(oldest_idle.is_some(), "heap roots must yield an age hint");
        }
        other => panic!("expected AtCapacity, got {other:?}"),
    }

    // Touch all but the first two sessions until the untouched pair ages
    // past `idle_ticks`; the refusal path must evict exactly those two,
    // wherever placement put them.
    let target = NodeId::new(3);
    for _ in 0..12 {
        for id in &ids[2..] {
            if let Ok(SessionStep::Ask(q)) = engine.next_question(*id) {
                let yes = dag.reaches(q, target);
                let _ = engine.answer(*id, yes);
            }
        }
    }
    let reopened = engine.open_session(plan, PolicyKind::TopDown).unwrap().id();
    assert!(engine.live_sessions() <= 6);
    assert!(engine.stats().evicted >= 1, "eviction must cross shards");
    for stale in &ids[..2] {
        assert!(
            matches!(
                engine.next_question(*stale),
                Err(ServiceError::UnknownSession(_)) | Ok(_)
            ),
            "stale id must never alias a newer session"
        );
    }
    assert_ne!(reopened, ids[0]);
    assert_ne!(reopened, ids[1]);
}

/// A premature `finish()` (unresolved session → `SessionMisuse`) leaves
/// the session live — and it must stay idle-evictable. Regression test:
/// `finish` used to update `last_touch` without pushing an idle-heap
/// entry, so the session's old entry was discarded as stale residue and
/// the abandoned session could never be evicted.
#[test]
fn failed_finish_keeps_session_evictable() {
    let spec = plan_spec();
    let engine = SearchEngine::new(EngineConfig {
        shards: 2,
        idle_ticks: Some(4),
        ..EngineConfig::default()
    });
    let plan = engine.register_plan(spec).unwrap();
    let id = engine.open_session(plan, PolicyKind::TopDown).unwrap().id();
    assert!(matches!(engine.finish(id), Err(ServiceError::Core(_))));
    assert_eq!(engine.live_sessions(), 1);
    // Age the abandoned session past `idle_ticks` (every op is a tick),
    // then sweep: the failed finish's touch must be current in the heap.
    for _ in 0..8 {
        let probe = engine.open_session(plan, PolicyKind::TopDown).unwrap().id();
        engine.cancel(probe).unwrap();
    }
    assert_eq!(
        engine.sweep_idle(),
        1,
        "abandoned session must be evictable"
    );
    assert_eq!(engine.live_sessions(), 0);
}

/// `shards: 0` resolves via `AIGS_SHARDS` or the host's parallelism and
/// writes the resolved count back into the running config.
#[test]
fn auto_shard_resolution_is_observable() {
    let engine = SearchEngine::default();
    let resolved = engine.config().shards;
    assert!(resolved >= 1);
    assert_eq!(engine.stats().shards, resolved);
}
