//! Shared helpers for the durability and chaos integration suites.

#![allow(dead_code)] // each test binary uses a subset

use std::path::PathBuf;

use aigs_core::{SearchOutcome, SessionStep};
use aigs_graph::{Dag, NodeId};
use aigs_service::{PlanId, PolicyKind, ReachChoice, SearchEngine, SessionId};

/// A fresh (pre-cleaned) scratch directory under the system temp dir,
/// unique per process so parallel `cargo test` invocations do not collide.
pub fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aigs-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The reachability backend the CI matrix forces via `AIGS_TEST_BACKEND`,
/// as a plan-level [`ReachChoice`]; `Auto` when unforced.
pub fn env_reach_choice() -> ReachChoice {
    match aigs_testutil::forced_backend() {
        None => ReachChoice::Auto,
        Some("closure") => ReachChoice::Closure,
        Some("interval") => ReachChoice::Interval {
            labelings: 2,
            seed: 0xbeef,
        },
        Some("bfs") => ReachChoice::Bfs,
        Some("none") => ReachChoice::None,
        Some(other) => panic!("unknown backend {other}"),
    }
}

/// Steps session `id` to completion with truthful answers for `target`,
/// returning the transcript of (question, answer) pairs plus the outcome.
pub fn drive_to_end(
    engine: &SearchEngine,
    id: SessionId,
    dag: &Dag,
    target: NodeId,
) -> (Vec<(NodeId, bool)>, SearchOutcome) {
    let mut transcript = Vec::new();
    loop {
        match engine.next_question(id).expect("next_question") {
            SessionStep::Resolved(_) => return (transcript, engine.finish(id).expect("finish")),
            SessionStep::Ask(q) => {
                let yes = dag.reaches(q, target);
                transcript.push((q, yes));
                engine.answer(id, yes).expect("answer");
            }
        }
    }
}

/// Opens a control session and replays a recorded (question, answer)
/// prefix, asserting the control asks exactly the recorded questions —
/// the determinism recovery relies on.
pub fn open_and_replay(
    engine: &SearchEngine,
    plan: PlanId,
    kind: PolicyKind,
    prefix: &[(NodeId, bool)],
) -> SessionId {
    let id = engine.open_session(plan, kind).expect("open").id();
    for (i, &(want_q, yes)) in prefix.iter().enumerate() {
        match engine.next_question(id).expect("next_question") {
            SessionStep::Ask(q) => {
                assert_eq!(q, want_q, "control diverged from the log at step {i}");
                engine.answer(id, yes).expect("answer");
            }
            SessionStep::Resolved(t) => panic!("control resolved early at step {i}: {t:?}"),
        }
    }
    id
}
