//! Telemetry integration: histogram laws (property-tested), exact
//! reconciliation between [`TelemetrySnapshot`] and [`EngineStats`] under
//! mixed traffic, per-shard stats summing to the aggregate, the
//! realized-vs-predicted cost differential against
//! [`aigs_core::evaluate_exhaustive`], and the disabled-telemetry and
//! slow-op-journal paths.

mod common;

use std::sync::Arc;

use aigs_core::{evaluate_exhaustive, NodeWeights, SearchContext};
use aigs_graph::NodeId;
use aigs_service::telemetry::{
    bucket_bound, bucket_index, HistSnapshot, Op, Tier, HIST_BUCKETS, OPS,
};
use aigs_service::{EngineConfig, PlanSpec, PolicyKind, SearchEngine};
use aigs_testutil::{dag_from_seed, generic_weights};
use common::{drive_to_end, env_reach_choice, scratch_dir};
use proptest::prelude::*;

/// Builds a [`HistSnapshot`] the way the atomic histogram would, from a
/// list of recorded values.
fn hist_of(values: &[u64]) -> HistSnapshot {
    let mut h = HistSnapshot::default();
    for &v in values {
        h.buckets[bucket_index(v)] += 1;
        h.sum = h.sum.wrapping_add(v);
    }
    h
}

fn merged(a: &HistSnapshot, b: &HistSnapshot) -> HistSnapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every value lands in the bucket whose bounds contain it:
    /// `bound(b-1) < v <= bound(b)`.
    #[test]
    fn bucket_index_respects_bucket_bounds(v in 0u64..u64::MAX) {
        let b = bucket_index(v);
        prop_assert!(b < HIST_BUCKETS);
        prop_assert!(v <= bucket_bound(b), "v={v} above bound of bucket {b}");
        if b > 0 {
            prop_assert!(
                v > bucket_bound(b - 1),
                "v={v} not above bound of bucket {}",
                b - 1
            );
        }
    }

    /// Merge is associative and commutative, count/sum are additive, and
    /// `minus` inverts a merge — the laws per-shard aggregation and delta
    /// snapshots rely on.
    #[test]
    fn histogram_merge_laws(
        xs in prop::collection::vec(0u64..(1u64 << 48), 0..40),
        ys in prop::collection::vec(0u64..(1u64 << 48), 0..40),
        zs in prop::collection::vec(0u64..(1u64 << 48), 0..40),
    ) {
        let (a, b, c) = (hist_of(&xs), hist_of(&ys), hist_of(&zs));
        let left = merged(&merged(&a, &b), &c);
        let right = merged(&a, &merged(&b, &c));
        prop_assert_eq!(&left, &right, "merge is not associative");
        prop_assert_eq!(merged(&a, &b), merged(&b, &a), "merge is not commutative");
        prop_assert_eq!(left.count(), (xs.len() + ys.len() + zs.len()) as u64);
        prop_assert_eq!(
            merged(&a, &b).minus(&a),
            b.clone(),
            "minus does not invert merge"
        );
    }
}

/// Mixed traffic — finished, cancelled, errored, and evicted sessions on
/// live and compiled tiers across shards — reconciles *exactly* with the
/// engine's counters: telemetry is the same events, just richer.
#[test]
fn telemetry_reconciles_with_engine_stats() {
    let n = 18;
    let seed = 0x7e1e;
    let dag = Arc::new(dag_from_seed(n, 0.3, seed));
    let weights = Arc::new(generic_weights(n, seed));
    let engine = SearchEngine::new(EngineConfig {
        shards: 4,
        idle_ticks: Some(32),
        telemetry: Some(true),
        ..EngineConfig::default()
    });
    let plan = engine
        .register_plan(PlanSpec::new(Arc::clone(&dag), weights).with_reach(env_reach_choice()))
        .unwrap();

    // Finished sessions, every target once (greedy-dag; compiled or live
    // depending on the plan's compiled tier — telemetry must agree either
    // way).
    for v in dag.nodes() {
        let id = engine
            .open_session(plan, PolicyKind::GreedyDag)
            .unwrap()
            .id();
        drive_to_end(&engine, id, &dag, v);
    }
    // A few seeded-random sessions, finished and cancelled.
    for s in 0..6u64 {
        let id = engine
            .open_session(plan, PolicyKind::Random { seed: s })
            .unwrap()
            .id();
        if s % 2 == 0 {
            drive_to_end(&engine, id, &dag, NodeId::new(((s as usize) * 3) % n));
        } else {
            engine.cancel(id).unwrap();
        }
    }
    // An errored session: GreedyTree on a DAG plan fails (at open or at
    // its first step, depending on where the policy validates shape).
    if let Ok(handle) = engine.open_session(plan, PolicyKind::GreedyTree) {
        assert!(engine.next_question(handle.id()).is_err());
    }
    // Idle-evicted sessions: abandon three, age them past the TTL by
    // stepping a fourth, then sweep.
    let _abandoned: Vec<_> = (0..3)
        .map(|_| engine.open_session(plan, PolicyKind::TopDown).unwrap().id())
        .collect();
    let active = engine.open_session(plan, PolicyKind::TopDown).unwrap().id();
    for _ in 0..40 {
        let _ = engine.next_question(active).unwrap();
    }
    let swept = engine.sweep_idle();
    assert!(swept >= 3, "expected the abandoned sessions to be evicted");

    let stats = engine.stats();
    let snap = engine.telemetry();
    assert!(snap.enabled);
    assert_eq!(snap.shards as usize, stats.shards);

    // Event-for-event reconciliation.
    assert_eq!(snap.op_total(Op::Open), stats.opened, "opens");
    assert_eq!(snap.op_total(Op::Finish), stats.finished, "finishes");
    assert_eq!(snap.op_total(Op::Cancel), stats.cancelled, "cancels");
    assert_eq!(snap.op_total(Op::Evict), stats.evicted, "evictions");
    assert_eq!(
        snap.op_total(Op::Next) + snap.op_total(Op::Answer),
        stats.steps,
        "steps"
    );
    assert_eq!(
        snap.op_tier(Op::Next, Tier::Compiled).count()
            + snap.op_tier(Op::Answer, Tier::Compiled).count(),
        stats.compiled_hits,
        "compiled-tier hits"
    );
    // Histogram counts equal per-op counter totals (every duration cell
    // pairs with a kind-count cell), except Evict which records one drain
    // duration per sweep, and Recover which never fired here.
    for op in OPS {
        if matches!(op, Op::Evict | Op::Recover) {
            continue;
        }
        let hist: u64 = [Tier::Live, Tier::Compiled, Tier::Fallback]
            .iter()
            .map(|&t| snap.op_tier(op, t).count())
            .sum();
        assert_eq!(
            hist,
            snap.op_total(op),
            "duration/count mismatch for {op:?}"
        );
    }

    // Per-shard stats sum to the aggregate, field by field.
    let shards = engine.stats_per_shard();
    assert_eq!(shards.len(), stats.shards);
    let sum = |f: fn(&aigs_service::ShardStats) -> u64| shards.iter().map(f).sum::<u64>();
    assert_eq!(sum(|s| s.live) as usize, stats.live);
    assert_eq!(sum(|s| s.opened), stats.opened);
    assert_eq!(sum(|s| s.finished), stats.finished);
    assert_eq!(sum(|s| s.cancelled), stats.cancelled);
    assert_eq!(sum(|s| s.evicted), stats.evicted);
    assert_eq!(sum(|s| s.errored), stats.errored);
    assert_eq!(sum(|s| s.panicked), stats.panicked);
    assert_eq!(sum(|s| s.steps), stats.steps);
    assert_eq!(sum(|s| s.pool_hits), stats.pool_hits);
    assert_eq!(sum(|s| s.compiled_hits), stats.compiled_hits);
    assert_eq!(sum(|s| s.compiled_fallbacks), stats.compiled_fallbacks);
    assert_eq!(sum(|s| s.wal_records), stats.wal_records);

    // The Prometheus rendering carries the same totals.
    let text = engine.prometheus_text();
    assert!(text.contains("aigs_live_sessions"), "{text}");
    assert!(
        text.contains("aigs_ops_total{op=\"finish\",kind=\"greedy-dag\"}"),
        "missing finish row:\n{text}"
    );
    assert!(text.contains("aigs_op_duration_ns_bucket"), "{text}");
}

/// With telemetry disabled the snapshot stays empty (and the hot path
/// records nothing), while the engine counters still work.
#[test]
fn disabled_telemetry_records_nothing() {
    let n = 12;
    let dag = Arc::new(dag_from_seed(n, 0.3, 0xd15));
    let weights = Arc::new(generic_weights(n, 0xd15));
    let engine = SearchEngine::new(EngineConfig {
        shards: 2,
        telemetry: Some(false),
        ..EngineConfig::default()
    });
    let plan = engine
        .register_plan(PlanSpec::new(Arc::clone(&dag), weights))
        .unwrap();
    for v in dag.nodes().take(4) {
        let id = engine
            .open_session(plan, PolicyKind::GreedyDag)
            .unwrap()
            .id();
        drive_to_end(&engine, id, &dag, v);
    }
    let stats = engine.stats();
    assert_eq!(stats.opened, 4);
    let snap = engine.telemetry();
    assert!(!snap.enabled);
    for op in OPS {
        assert_eq!(snap.op_total(op), 0, "{op:?} recorded while disabled");
    }
    assert_eq!(snap.wal.append_bytes, 0);
    assert!(snap.plans.is_empty());
    assert!(engine.drain_slow_ops().is_empty());
}

/// The realized-cost histogram matches the policy's *predicted* expected
/// cost on a uniform-prior roster: driving every target once makes the
/// empirical mean equal the paper's `Σ p(v)·cost(v)` exactly, and the
/// prediction itself is bit-compatible with [`evaluate_exhaustive`].
#[test]
fn realized_cost_matches_predicted_on_uniform_prior() {
    let n = 16;
    let seed = 0xc057;
    let dag = Arc::new(dag_from_seed(n, 0.3, seed));
    let weights = Arc::new(NodeWeights::uniform(n));
    let kind = PolicyKind::GreedyDag;
    let engine = SearchEngine::new(EngineConfig {
        shards: 2,
        telemetry: Some(true),
        ..EngineConfig::default()
    });
    let plan = engine
        .register_plan(
            PlanSpec::new(Arc::clone(&dag), Arc::clone(&weights)).with_reach(env_reach_choice()),
        )
        .unwrap();

    let predicted = engine
        .predict_expected_cost(plan, kind)
        .unwrap()
        .expect("greedy-dag is predictable");

    // Differential reference: the same evaluation, run directly on core.
    let ctx = SearchContext::new(&dag, &weights);
    let report = evaluate_exhaustive(kind.build().as_mut(), &ctx).unwrap();
    assert!(
        (predicted.expected_queries - report.expected_cost).abs() < 1e-9,
        "predicted {} vs evaluate_exhaustive {}",
        predicted.expected_queries,
        report.expected_cost
    );
    assert!((predicted.expected_price - report.expected_price).abs() < 1e-9);

    // Drive every target once; under a uniform prior the realized mean is
    // the expected cost, with no sampling error.
    let mut total_queries = 0u64;
    let mut total_price = 0.0f64;
    for v in dag.nodes() {
        let id = engine.open_session(plan, kind).unwrap().id();
        let (_, outcome) = drive_to_end(&engine, id, &dag, v);
        total_queries += u64::from(outcome.queries);
        total_price += outcome.price;
    }

    let snap = engine.telemetry();
    let row = snap
        .plans
        .iter()
        .find(|p| p.plan == plan.index())
        .and_then(|p| p.kinds.iter().find(|k| k.kind == kind.name()))
        .expect("realized row for greedy-dag");
    assert_eq!(row.queries.count(), n as u64);
    assert_eq!(row.queries.sum, total_queries);
    // Price is accumulated in integer micros: exact to n µ-units.
    assert!((row.price_sum - total_price).abs() < n as f64 * 1e-6);
    let realized_mean = row.queries.sum as f64 / row.queries.count() as f64;
    assert!(
        (realized_mean - predicted.expected_queries).abs() < 1e-9,
        "realized mean {} vs predicted {}",
        realized_mean,
        predicted.expected_queries
    );
    let gauge = row.predicted.expect("snapshot carries the prediction");
    assert!((gauge.expected_queries - predicted.expected_queries).abs() < 1e-12);
}

/// Durable traffic populates the WAL metric family: appended bytes,
/// fsync batch/latency histograms, and zero degraded transitions on the
/// happy path.
#[test]
fn wal_metrics_populate_under_durability() {
    let dir = scratch_dir("telemetry-wal");
    let n = 12;
    let dag = Arc::new(dag_from_seed(n, 0.3, 0xa1));
    let weights = Arc::new(generic_weights(n, 0xa1));
    let engine = SearchEngine::new(EngineConfig {
        shards: 2,
        telemetry: Some(true),
        durability: Some(
            aigs_service::DurabilityConfig::new(&dir).with_fsync(aigs_service::FsyncPolicy::Always),
        ),
        ..EngineConfig::default()
    });
    let plan = engine
        .register_plan(PlanSpec::new(Arc::clone(&dag), weights))
        .unwrap();
    for v in dag.nodes().take(6) {
        let id = engine
            .open_session(plan, PolicyKind::GreedyDag)
            .unwrap()
            .id();
        drive_to_end(&engine, id, &dag, v);
    }
    let stats = engine.stats();
    assert!(stats.wal_records > 0);
    assert!(!stats.degraded);
    assert_eq!(stats.degraded_since, None);
    assert_eq!(stats.degraded_reason, None);
    let snap = engine.telemetry();
    assert!(snap.wal.append_bytes > 0, "no WAL bytes recorded");
    assert!(snap.wal.fsync_ns.count() > 0, "no fsyncs timed");
    assert_eq!(snap.wal.degraded_transitions, 0);
    // Each fsync batch drains at least one record; batch totals cannot
    // exceed appended records.
    assert!(snap.wal.fsync_batch.sum <= stats.wal_records);
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A threshold of 1 ns makes every operation "slow": the journal fills,
/// stays bounded, and drains destructively.
#[test]
fn slow_op_journal_captures_and_bounds() {
    std::env::set_var("AIGS_SLOW_OP_NS", "1");
    let n = 12;
    let dag = Arc::new(dag_from_seed(n, 0.3, 0x510));
    let weights = Arc::new(generic_weights(n, 0x510));
    let engine = SearchEngine::new(EngineConfig {
        shards: 2,
        telemetry: Some(true),
        ..EngineConfig::default()
    });
    std::env::remove_var("AIGS_SLOW_OP_NS");
    let plan = engine
        .register_plan(PlanSpec::new(Arc::clone(&dag), weights))
        .unwrap();
    for v in dag.nodes().take(5) {
        let id = engine
            .open_session(plan, PolicyKind::GreedyDag)
            .unwrap()
            .id();
        drive_to_end(&engine, id, &dag, v);
    }
    let slow = engine.drain_slow_ops();
    assert!(!slow.is_empty(), "1 ns threshold should flag everything");
    // Bounded: at most one ring per shard.
    assert!(slow.len() <= 2 * 64, "journal exceeded its ring bound");
    for entry in &slow {
        assert!(entry.duration_ns >= 1);
        assert!((entry.shard as usize) < 2);
    }
    // Draining is destructive; an idle engine has nothing new.
    assert!(engine.drain_slow_ops().is_empty());
}
