//! Fault-injection chaos suite: kill the engine at **every** injected
//! fault point under mixed traffic and prove acknowledged state survives
//! recovery.
//!
//! For each (site, action) pair the suite first runs the deterministic
//! workload fault-free with hit counting on, learning how many times the
//! site fires. It then replays the identical workload once per hit index
//! `n`, arming a one-shot fault at the n-th hit, killing the engine (drop,
//! no graceful shutdown) as soon as the fault surfaces — or at workload
//! end for faults the engine absorbs internally — and recovering from the
//! log directory. The invariant checked after every recovery:
//!
//! * every **acknowledged** session survives and continues bit-identically
//!   to an uncrashed control run (same questions, same outcome, same price
//!   bits), resuming at its acked answer count or at most one in-flight
//!   operation past it (a record can persist without its fsync — persisted
//!   but never acknowledged, which at-least-once semantics permit);
//! * every acknowledged finish/cancel stays retired — no resurrection;
//! * a session whose policy panicked, or whose teardown raced the fault,
//!   may be alive or retired — but if alive its state is exactly its acked
//!   state.
//!
//! Fail points are process-global, so every test here serialises on one
//! mutex; this binary must hold no unrelated parallel tests.
//!
//! `AIGS_FAULT_SEED` varies the workload (kinds, targets) per CI matrix
//! entry; `AIGS_CHAOS_MAX_POINTS` caps the per-site sweep for smoke runs.

mod common;

use std::path::Path;
use std::sync::Mutex;

use aigs_core::SessionStep;
use aigs_graph::{Dag, NodeId};
use aigs_service::{
    DurabilityConfig, EngineConfig, FsyncPolicy, PlanId, PlanSpec, PolicyKind, SearchEngine,
    ServiceError, SessionId,
};
use aigs_testutil::failpoints::{self, FaultAction};
use aigs_testutil::{dag_from_seed, generic_prices, generic_weights};
use common::{drive_to_end, env_reach_choice, open_and_replay, scratch_dir};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Serialises all fault-arming tests (the fail-point registry is global).
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

const N: usize = 12;

fn plan_spec(seed: u64) -> PlanSpec {
    let dag = std::sync::Arc::new(dag_from_seed(N, 0.3, seed));
    let weights = std::sync::Arc::new(generic_weights(N, seed));
    let costs = std::sync::Arc::new(generic_prices(N, seed));
    PlanSpec::new(dag, weights)
        .with_costs(costs)
        .with_reach(env_reach_choice())
}

/// Aggressive knobs so the workload crosses every durability path: tight
/// fsync batching exercises `wal.fsync`, a tiny snapshot threshold makes
/// compaction (rotate → snapshot → publish) run mid-traffic. `shards > 1`
/// spreads the same workload over several WAL writers, so the sweep kills
/// each shard's writer in turn.
fn chaos_config(dir: &Path, shards: usize) -> EngineConfig {
    EngineConfig {
        shards,
        durability: Some(
            DurabilityConfig::new(dir)
                .with_fsync(FsyncPolicy::EveryN(3))
                .with_snapshot_every(Some(20)),
        ),
        ..EngineConfig::default()
    }
}

/// One session's acknowledged state, as its caller observed it.
struct ShadowSession {
    id: SessionId,
    kind: PolicyKind,
    target: NodeId,
    acked: Vec<(NodeId, bool)>,
}

/// The acknowledged engine state at the moment of the kill.
#[derive(Default)]
struct Shadow {
    /// Sessions whose last acknowledged op left them live: recovery MUST
    /// restore them.
    live: Vec<ShadowSession>,
    /// Sessions whose last op faulted (quarantine or an unacknowledged
    /// finish/cancel/answer): recovery may restore or retire them, but a
    /// restored one must hold exactly its acked state.
    uncertain: Vec<ShadowSession>,
    /// Acknowledged finishes/cancels: recovery MUST NOT resurrect these.
    retired: Vec<SessionId>,
}

/// Errors that mean "the fault manifested — kill the engine here".
fn is_fault(e: &ServiceError) -> bool {
    matches!(
        e,
        ServiceError::Durability(_) | ServiceError::Degraded | ServiceError::PolicyPanicked
    )
}

/// Drives the deterministic mixed-traffic workload: six sessions of varied
/// policy kinds stepped round-robin, two parked early (stay live), one
/// cancelled mid-flight, the rest driven to finish. Every acknowledged op
/// is recorded in `shadow`; the first fault stops the workload (the caller
/// then kills the engine). Returns whether the workload completed.
fn run_workload(
    engine: &SearchEngine,
    plan: PlanId,
    dag: &Dag,
    seed: u64,
    shadow: &mut Shadow,
) -> bool {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let kinds = [
        PolicyKind::TopDown,
        PolicyKind::Migs,
        PolicyKind::Wigs,
        PolicyKind::GreedyDag,
        PolicyKind::GreedyNaive,
        PolicyKind::CostSensitive,
        PolicyKind::Random { seed: seed ^ 0xbad },
    ];
    let mut sessions: Vec<ShadowSession> = Vec::new();
    let mut retired = [false; 6];
    let mut parked = [false; 6];
    let mut fault_at: Option<usize> = None;

    'workload: {
        for _ in 0..6 {
            let kind = kinds[rng.gen_range(0..kinds.len())];
            let target = NodeId::new(rng.gen_range(0..dag.node_count()));
            match engine.open_session(plan, kind) {
                Ok(h) => sessions.push(ShadowSession {
                    id: h.id(),
                    kind,
                    target,
                    acked: Vec::new(),
                }),
                Err(e) if is_fault(&e) => break 'workload,
                Err(e) => panic!("unexpected open error: {e}"),
            }
        }
        let mut round = 0;
        while sessions
            .iter()
            .enumerate()
            .any(|(i, _)| !retired[i] && !parked[i])
        {
            round += 1;
            for i in 0..sessions.len() {
                if retired[i] || parked[i] {
                    continue;
                }
                // Park two sessions with partial progress: they must be
                // restored as-is.
                if (i == 0 || i == 5) && sessions[i].acked.len() >= 2 {
                    parked[i] = true;
                    continue;
                }
                // One scripted cancel mixes retirement into the traffic.
                if round == 2 && i == 3 {
                    match engine.cancel(sessions[i].id) {
                        Ok(()) => {
                            retired[i] = true;
                            continue;
                        }
                        Err(e) if is_fault(&e) => {
                            fault_at = Some(i);
                            break 'workload;
                        }
                        Err(e) => panic!("unexpected cancel error: {e}"),
                    }
                }
                match engine.next_question(sessions[i].id) {
                    Ok(SessionStep::Ask(q)) => {
                        let yes = dag.reaches(q, sessions[i].target);
                        match engine.answer(sessions[i].id, yes) {
                            Ok(()) => sessions[i].acked.push((q, yes)),
                            Err(e) if is_fault(&e) => {
                                fault_at = Some(i);
                                break 'workload;
                            }
                            Err(e) => panic!("unexpected answer error: {e}"),
                        }
                    }
                    Ok(SessionStep::Resolved(_)) => match engine.finish(sessions[i].id) {
                        Ok(_) => retired[i] = true,
                        Err(e) if is_fault(&e) => {
                            fault_at = Some(i);
                            break 'workload;
                        }
                        Err(e) => panic!("unexpected finish error: {e}"),
                    },
                    Err(e) if is_fault(&e) => {
                        fault_at = Some(i);
                        break 'workload;
                    }
                    Err(e) => panic!("unexpected step error: {e}"),
                }
            }
        }
    }

    for (i, s) in sessions.into_iter().enumerate() {
        if retired[i] {
            shadow.retired.push(s.id);
        } else if fault_at == Some(i) {
            shadow.uncertain.push(s);
        } else {
            shadow.live.push(s);
        }
    }
    fault_at.is_none()
}

/// Recovers `dir` and checks the durability invariant against `shadow`.
fn verify_recovery(dir: &Path, spec: &PlanSpec, dag: &Dag, shadow: &Shadow, label: &str) {
    let (rec, report) =
        SearchEngine::recover(dir).unwrap_or_else(|e| panic!("{label}: recover failed: {e}"));
    assert_eq!(
        report.sessions_failed, 0,
        "{label}: unrestorable sessions: {:?}",
        report.anomalies
    );
    let control = SearchEngine::default();
    let cplan = control.register_plan(spec.clone()).unwrap();

    for id in &shadow.retired {
        assert!(
            matches!(rec.next_question(*id), Err(ServiceError::UnknownSession(_))),
            "{label}: acknowledged retirement resurrected"
        );
    }
    for ss in &shadow.live {
        check_continuation(&rec, &control, cplan, dag, ss, false, label);
    }
    for ss in &shadow.uncertain {
        check_continuation(&rec, &control, cplan, dag, ss, true, label);
    }
}

/// The recovered continuation of `ss` must splice into the uncrashed
/// control transcript: resume point within one op of the acked count, and
/// suffix + outcome bit-identical.
fn check_continuation(
    rec: &SearchEngine,
    control: &SearchEngine,
    cplan: PlanId,
    dag: &Dag,
    ss: &ShadowSession,
    may_be_dead: bool,
    label: &str,
) {
    let cid = control
        .open_session(cplan, ss.kind)
        .expect("control open")
        .id();
    let (full, want_out) = drive_to_end(control, cid, dag, ss.target);
    assert_eq!(
        &full[..ss.acked.len()],
        &ss.acked[..],
        "{label}: acked transcript diverged from the deterministic path"
    );
    match rec.next_question(ss.id) {
        Err(ServiceError::UnknownSession(_)) if may_be_dead => return,
        Err(e) => panic!("{label}: acknowledged session lost: {e}"),
        Ok(_) => {}
    }
    let (cont, got_out) = drive_to_end(rec, ss.id, dag, ss.target);
    let resumed_at = full
        .len()
        .checked_sub(cont.len())
        .unwrap_or_else(|| panic!("{label}: continuation longer than the full run"));
    assert!(
        resumed_at >= ss.acked.len() && resumed_at <= ss.acked.len() + 1,
        "{label}: resumed at answer {resumed_at}, but {} were acked",
        ss.acked.len()
    );
    assert_eq!(
        &full[resumed_at..],
        &cont[..],
        "{label}: continuation diverged"
    );
    assert_eq!(got_out.target, want_out.target, "{label}: wrong target");
    assert_eq!(got_out.queries, want_out.queries, "{label}: query count");
    assert_eq!(
        got_out.price.to_bits(),
        want_out.price.to_bits(),
        "{label}: price bits diverged"
    );
}

/// The kill-at-every-point sweep for one (site, action) pair, run on an
/// engine with `shards` WAL writers.
fn chaos_sweep(site: &'static str, action: FaultAction, shards: usize) {
    let _g = lock();
    let seed = failpoints::fault_seed().unwrap_or(1);
    let spec = plan_spec(seed);
    let dag = spec.dag.clone();

    // Fault-free counting pass: measure the site's hit schedule under the
    // exact workload (including engine + plan setup, which also appends).
    failpoints::disarm_all();
    failpoints::start_counting();
    let dir = scratch_dir(&format!("chaos-{site}-{action:?}-s{shards}-count"));
    let engine = SearchEngine::try_new(chaos_config(&dir, shards)).unwrap();
    let plan = engine.register_plan(spec.clone()).unwrap();
    let mut shadow = Shadow::default();
    let completed = run_workload(&engine, plan, &dag, seed, &mut shadow);
    assert!(completed, "fault-free pass must complete");
    let total = failpoints::hits(site);
    failpoints::disarm_all();
    drop(engine);
    verify_recovery(&dir, &spec, &dag, &shadow, "fault-free");
    assert!(
        total > 0,
        "site {site} never hit — dead chaos configuration"
    );
    eprintln!("chaos: {site}/{action:?} seed {seed}: sweeping {total} fault points");

    let cap: u64 = std::env::var("AIGS_CHAOS_MAX_POINTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(u64::MAX);

    for n in 1..=total.min(cap) {
        let label = format!("{site}/{action:?} s{shards} hit {n}/{total} seed {seed}");
        let dir = scratch_dir(&format!("chaos-{site}-{action:?}-s{shards}-{n}"));
        failpoints::disarm_all();
        failpoints::arm(site, n, action);
        let mut shadow = Shadow::default();
        // Setup itself appends, so the fault can fire before the workload
        // starts; a refused engine/plan means nothing was acknowledged.
        let setup = SearchEngine::try_new(chaos_config(&dir, shards)).and_then(|engine| {
            let plan = engine.register_plan(spec.clone())?;
            Ok((engine, plan))
        });
        match setup {
            Ok((engine, plan)) => {
                let _ = run_workload(&engine, plan, &dag, seed, &mut shadow);
                failpoints::disarm_all();
                drop(engine); // kill: no sync, no graceful shutdown
                verify_recovery(&dir, &spec, &dag, &shadow, &label);
            }
            Err(e) => {
                assert!(is_fault(&e), "{label}: unexpected setup error: {e}");
                failpoints::disarm_all();
                // Nothing acknowledged; recovery may succeed on whatever
                // prefix persisted or report the log unusable — it must
                // just never panic or fabricate sessions.
                if let Ok((rec, _)) = SearchEngine::recover(&dir) {
                    assert_eq!(rec.live_sessions(), 0, "{label}: phantom sessions");
                }
            }
        }
    }
    failpoints::disarm_all();
}

#[test]
fn kill_at_every_wal_append_io_error() {
    chaos_sweep("wal.append", FaultAction::IoError, 1);
}

#[test]
fn kill_at_every_wal_append_torn_write() {
    chaos_sweep("wal.append", FaultAction::ShortWrite, 1);
}

#[test]
fn kill_at_every_wal_fsync_io_error() {
    chaos_sweep("wal.fsync", FaultAction::IoError, 1);
}

#[test]
fn kill_at_every_policy_call_panic() {
    chaos_sweep("engine.policy", FaultAction::Panic, 1);
}

/// The same append-failure sweep over three shard WAL writers: each hit
/// index kills whichever shard's writer the workload reached, so every
/// writer dies at every point it can, and the other shards' acked state
/// must still recover bit-identically.
#[test]
fn kill_each_shard_wal_writer_in_turn() {
    chaos_sweep("wal.append", FaultAction::IoError, 3);
}

/// Targeted shard-blast-radius regression: when ONE shard's WAL writer
/// fails mid-answer, the engine degrades globally (one durability domain),
/// but only the session whose append failed is torn down — the other
/// shards' sessions hold exactly their acked state through recovery.
#[test]
fn shard_writer_failure_spares_other_shards() {
    let _g = lock();
    failpoints::disarm_all();
    let dir = scratch_dir("chaos-shard-writer");
    let spec = plan_spec(0x5A);
    let dag = spec.dag.clone();
    let engine = SearchEngine::try_new(chaos_config(&dir, 3)).unwrap();
    let plan = engine.register_plan(spec.clone()).unwrap();

    // Six sessions round-robin over three shards: two per shard, each with
    // two acked answers.
    let mut rows = Vec::new();
    for i in 0..6 {
        let kind = if i % 2 == 0 {
            PolicyKind::GreedyDag
        } else {
            PolicyKind::Wigs
        };
        let target = NodeId::new((i * 2 + 1) % N);
        let id = engine.open_session(plan, kind).unwrap().id();
        let mut acked = Vec::new();
        for _ in 0..2 {
            if let SessionStep::Ask(q) = engine.next_question(id).unwrap() {
                let yes = dag.reaches(q, target);
                engine.answer(id, yes).unwrap();
                acked.push((q, yes));
            }
        }
        rows.push(ShadowSession {
            id,
            kind,
            target,
            acked,
        });
    }

    // Kill the writer under the next answer: that session's shard is the
    // blast site.
    failpoints::arm("wal.append", 1, FaultAction::IoError);
    let victim = rows[0].id;
    if let SessionStep::Ask(_) = engine.next_question(victim).unwrap() {
        assert!(matches!(
            engine.answer(victim, true),
            Err(ServiceError::Durability(_))
        ));
    }
    failpoints::disarm_all();

    // One durability domain: the whole engine refuses mutations, even on
    // sessions whose own shard writer is healthy.
    assert!(engine.stats().degraded);
    assert!(matches!(
        engine.answer(rows[1].id, true),
        Err(ServiceError::Degraded)
    ));
    // But only the victim was torn down.
    assert_eq!(engine.live_sessions(), 5);
    drop(engine); // crash

    let (rec, report) = SearchEngine::recover(&dir).unwrap();
    assert_eq!(report.shards, 3);
    assert_eq!(report.sessions_failed, 0, "{:?}", report.anomalies);
    assert!(!rec.stats().degraded);
    let control = SearchEngine::default();
    let cplan = control.register_plan(spec).unwrap();
    // Every session — victim included — recovers at exactly its acked
    // prefix (the refused answer was never logged) and continues
    // bit-identically.
    for ss in &rows {
        let cid = open_and_replay(&control, cplan, ss.kind, &ss.acked);
        let (want_t, want_out) = drive_to_end(&control, cid, &dag, ss.target);
        let (got_t, got_out) = drive_to_end(&rec, ss.id, &dag, ss.target);
        assert_eq!(got_t, want_t, "{:?}: continuation diverged", ss.kind);
        assert_eq!(got_out.price.to_bits(), want_out.price.to_bits());
    }
}

/// Satellite regression: a panicking policy quarantines ONLY its session.
/// The instance is discarded (never re-pooled), the engine counts the
/// panic, and every other session — plus future opens — keeps working.
#[test]
fn panicking_policy_quarantines_only_its_session() {
    let _g = lock();
    failpoints::disarm_all();
    let spec = plan_spec(0x77);
    let dag = spec.dag.clone();
    let engine = SearchEngine::default();
    let plan = engine.register_plan(spec).unwrap();

    let s1 = engine
        .open_session(plan, PolicyKind::GreedyDag)
        .unwrap()
        .id();
    let s2 = engine.open_session(plan, PolicyKind::TopDown).unwrap().id();
    if let SessionStep::Ask(q) = engine.next_question(s1).unwrap() {
        engine.answer(s1, dag.reaches(q, NodeId::new(5))).unwrap();
    }

    failpoints::arm("engine.policy", 1, FaultAction::Panic);
    assert!(matches!(
        engine.next_question(s1),
        Err(ServiceError::PolicyPanicked)
    ));
    failpoints::disarm_all();

    // Only s1 died; its id is dead, the panic is counted.
    assert_eq!(engine.stats().panicked, 1);
    assert!(matches!(
        engine.next_question(s1),
        Err(ServiceError::UnknownSession(_))
    ));
    // s2 is untouched and completes normally.
    let (_, out) = drive_to_end(&engine, s2, &dag, NodeId::new(9));
    assert_eq!(out.target, NodeId::new(9));
    // The quarantined GreedyDag instance was NOT returned to the pool: a
    // fresh open builds cold (no pool hit).
    let hits_before = engine.stats().pool_hits;
    let s3 = engine
        .open_session(plan, PolicyKind::GreedyDag)
        .unwrap()
        .id();
    assert_eq!(engine.stats().pool_hits, hits_before);
    let (_, out) = drive_to_end(&engine, s3, &dag, NodeId::new(3));
    assert_eq!(out.target, NodeId::new(3));
}

/// Satellite regression: after a WAL failure the engine degrades to
/// read-mostly — mutators refused, unaffected reads served — the session
/// whose applied answer could not be logged is torn down (degraded-mode
/// reads must never expose state the log does not acknowledge), and
/// recovery restores every session at exactly its acknowledged prefix.
#[test]
fn degraded_mode_is_read_mostly_and_preserves_acks() {
    let _g = lock();
    failpoints::disarm_all();
    let dir = scratch_dir("chaos-degraded");
    let spec = plan_spec(0x99);
    let dag = spec.dag.clone();
    let config = EngineConfig {
        durability: Some(DurabilityConfig::new(&dir).with_fsync(FsyncPolicy::Always)),
        ..EngineConfig::default()
    };
    let engine = SearchEngine::try_new(config).unwrap();
    let plan = engine.register_plan(spec.clone()).unwrap();
    let id = engine.open_session(plan, PolicyKind::Wigs).unwrap().id();
    let other = engine
        .open_session(plan, PolicyKind::GreedyDag)
        .unwrap()
        .id();
    let target = NodeId::new(6);
    let other_target = NodeId::new(2);
    let mut acked = Vec::new();
    let mut other_acked = Vec::new();
    for _ in 0..2 {
        if let SessionStep::Ask(q) = engine.next_question(id).unwrap() {
            let yes = dag.reaches(q, target);
            engine.answer(id, yes).unwrap();
            acked.push((q, yes));
        }
    }
    if let SessionStep::Ask(q) = engine.next_question(other).unwrap() {
        let yes = dag.reaches(q, other_target);
        engine.answer(other, yes).unwrap();
        other_acked.push((q, yes));
    }

    // The next append fails: the causing op reports Durability, the engine
    // flips to degraded, and the answering session — whose in-memory state
    // already holds the unacknowledged answer — is torn down rather than
    // served divergent from what recovery will replay.
    failpoints::arm("wal.append", 1, FaultAction::IoError);
    if let SessionStep::Ask(_) = engine.next_question(id).unwrap() {
        assert!(matches!(
            engine.answer(id, true),
            Err(ServiceError::Durability(_))
        ));
    }
    failpoints::disarm_all();
    assert!(engine.stats().degraded);
    assert_eq!(engine.stats().errored, 1);
    assert!(matches!(
        engine.next_question(id),
        Err(ServiceError::UnknownSession(_))
    ));
    assert_eq!(engine.live_sessions(), 1);

    // Mutators are refused…
    assert!(matches!(
        engine.answer(other, true),
        Err(ServiceError::Degraded)
    ));
    assert!(matches!(
        engine.open_session(plan, PolicyKind::TopDown),
        Err(ServiceError::Degraded)
    ));
    assert!(matches!(engine.cancel(other), Err(ServiceError::Degraded)));
    assert!(matches!(engine.compact(), Err(ServiceError::Degraded)));
    assert_eq!(engine.sweep_idle(), 0);
    // …while reads on unaffected sessions keep serving.
    assert!(engine.next_question(other).is_ok());
    drop(engine);

    // Recovery restores BOTH sessions at exactly their acked prefixes (the
    // refused answer was never written, and the in-memory teardown was not
    // a durable retirement) and the engine is fully operational again.
    let (rec, report) = SearchEngine::recover(&dir).unwrap();
    assert_eq!(report.sessions, 2);
    assert!(!rec.stats().degraded);
    let control = SearchEngine::default();
    let cplan = control.register_plan(spec).unwrap();
    for (sid, kind, tgt, pre) in [
        (id, PolicyKind::Wigs, target, &acked),
        (other, PolicyKind::GreedyDag, other_target, &other_acked),
    ] {
        let cid = open_and_replay(&control, cplan, kind, pre);
        let (want_t, want_out) = drive_to_end(&control, cid, &dag, tgt);
        let (got_t, got_out) = drive_to_end(&rec, sid, &dag, tgt);
        assert_eq!(got_t, want_t, "{kind:?}: continuation diverged");
        assert_eq!(got_out.price.to_bits(), want_out.price.to_bits());
    }
}
