//! Property-based tests for the graph substrate.

use aigs_graph::generate::{random_dag, random_tree, DagConfig, TreeConfig};
use aigs_graph::{
    heavy_path_from, AncestorSet, CandidateSet, HeavyPathDecomposition, IntervalIndex, NodeId,
    ReachClosure, ReachIndex, ReachScratch, Tree,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn tree_from_seed(n: usize, seed: u64) -> aigs_graph::Dag {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    random_tree(&TreeConfig::bushy(n), &mut rng)
}

fn dag_from_seed(n: usize, frac: f64, seed: u64) -> aigs_graph::Dag {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    random_dag(&DagConfig::bushy(n, frac), &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Euler intervals on trees agree with BFS reachability.
    #[test]
    fn tree_intervals_match_bfs(n in 1usize..60, seed in 0u64..1000) {
        let g = tree_from_seed(n, seed);
        let t = Tree::new(&g).unwrap();
        for u in g.nodes() {
            for v in g.nodes() {
                prop_assert_eq!(t.in_subtree(u, v), g.reaches(u, v));
            }
        }
    }

    /// Transitive-closure bitsets agree with BFS reachability on DAGs.
    #[test]
    fn closure_matches_bfs(n in 2usize..50, frac in 0.0f64..0.4, seed in 0u64..1000) {
        let g = dag_from_seed(n, frac, seed);
        let c = ReachClosure::build(&g);
        for u in g.nodes() {
            let desc = g.descendants(u);
            prop_assert_eq!(c.descendants(u).count(), desc.len());
            for v in g.nodes() {
                prop_assert_eq!(c.reaches(u, v), g.reaches(u, v));
            }
        }
    }

    /// The GRAIL interval index answers `reaches` exactly like the
    /// transitive closure on randomized DAGs, for every labeling count
    /// k ∈ {1, 2, 5} — the invariant that makes the backends freely
    /// interchangeable inside DAG policies.
    #[test]
    fn interval_index_matches_closure(
        n in 2usize..60,
        frac in 0.0f64..0.4,
        seed in 0u64..1000,
        k_pick in 0usize..3,
    ) {
        let k = [1usize, 2, 5][k_pick];
        let g = dag_from_seed(n, frac, seed);
        let closure = ReachClosure::build(&g);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x1d7);
        let idx = IntervalIndex::build(&g, k, &mut rng);
        prop_assert_eq!(idx.labelings(), k);
        for u in g.nodes() {
            for v in g.nodes() {
                prop_assert_eq!(
                    idx.reaches(&g, u, v),
                    closure.reaches(u, v),
                    "k={} ({},{})", k, u, v
                );
                // The interval condition stays necessary: no false negative
                // may ever slip through the O(k) filter.
                if closure.reaches(u, v) {
                    prop_assert!(idx.may_reach(u, v));
                }
            }
        }
    }

    /// Every `ReachIndex` backend derives identical descendant rows and
    /// intersection counts — the word-for-word equality that keeps policy
    /// journals bit-exact across backends.
    #[test]
    fn reach_index_backends_agree(
        n in 2usize..50,
        frac in 0.0f64..0.4,
        seed in 0u64..1000,
    ) {
        let g = dag_from_seed(n, frac, seed);
        let nn = g.node_count();
        let closure = ReachIndex::closure_for(&g);
        let interval = ReachIndex::interval_for(&g, 2, seed ^ 0xa5a5);
        let mut s0 = ReachScratch::new(nn);
        let mut s1 = ReachScratch::new(nn);
        // An arbitrary "alive" subset to intersect against.
        let mut alive = aigs_graph::NodeBitSet::full(nn);
        for i in (0..nn).step_by(2) {
            alive.remove(NodeId::new(i));
        }
        for u in g.nodes() {
            let want = closure.descendants(&g, u, &mut s0).clone();
            for index in [&interval, &ReachIndex::Bfs] {
                let got = index.descendants(&g, u, &mut s1);
                prop_assert_eq!(&want, got, "{} row {}", index.backend_name(), u);
                prop_assert_eq!(
                    index.intersection_count(&g, u, &alive, &mut s1),
                    want.intersection_count(&alive),
                    "{} count {}", index.backend_name(), u
                );
            }
        }
    }

    /// Ancestor sets answer `reach` exactly like a forward BFS would.
    #[test]
    fn ancestor_sets_match(n in 2usize..50, frac in 0.0f64..0.4, seed in 0u64..1000) {
        let g = dag_from_seed(n, frac, seed);
        for z in g.nodes() {
            let a = AncestorSet::new(&g, z);
            for q in g.nodes() {
                prop_assert_eq!(a.reach(q), g.reaches(q, z));
            }
        }
    }

    /// Heavy-path decomposition is a partition, and every path is a real
    /// downward chain whose edges are heavy.
    #[test]
    fn heavy_paths_partition(n in 1usize..80, seed in 0u64..1000) {
        let g = tree_from_seed(n, seed);
        let t = Tree::new(&g).unwrap();
        let hpd = HeavyPathDecomposition::new(&t, None);
        let mut count = vec![0u32; n];
        for path in hpd.paths() {
            for w in path.windows(2) {
                // Consecutive nodes are parent/child …
                prop_assert!(g.children(w[0]).contains(&w[1]));
                // … and the child is (weakly) heaviest among its siblings.
                let sz = t.subtree_size(w[1]);
                for &sib in g.children(w[0]) {
                    prop_assert!(t.subtree_size(sib) <= sz || sib == w[1]);
                }
            }
            for &u in path {
                count[u.index()] += 1;
            }
        }
        prop_assert!(count.iter().all(|&c| c == 1));
    }

    /// The root's weighted heavy path always ends at a leaf.
    #[test]
    fn heavy_path_reaches_leaf(n in 1usize..80, seed in 0u64..1000) {
        let g = tree_from_seed(n, seed);
        let t = Tree::new(&g).unwrap();
        let path = heavy_path_from(&g, g.root(), |c| t.subtree_size(c) as f64, |_| true);
        let last = *path.last().unwrap();
        prop_assert!(g.is_leaf(last));
        prop_assert_eq!(path[0], g.root());
    }

    /// Candidate-set updates mirror set algebra over *original-graph*
    /// descendant sets — provided queries target alive nodes, which is the
    /// framework's contract (eliminated nodes carry no information). Undo
    /// restores the exact previous state.
    #[test]
    fn candidate_set_algebra(
        n in 2usize..40,
        frac in 0.0f64..0.4,
        seed in 0u64..1000,
        ops in prop::collection::vec((0u32..40, prop::bool::ANY), 1..12),
    ) {
        let g = dag_from_seed(n, frac, seed);
        let mut cand = CandidateSet::new(g.node_count());
        let mut model: Vec<bool> = vec![true; g.node_count()];
        let mut history: Vec<Vec<bool>> = Vec::new();

        for (q_raw, yes) in ops {
            if cand.count() == 0 {
                break;
            }
            // Remap the raw pick onto the alive nodes only.
            let alive: Vec<NodeId> = cand.iter_alive().collect();
            let q = alive[(q_raw as usize) % alive.len()];
            history.push(model.clone());
            let desc = g.descendants(q);
            for u in g.nodes() {
                let in_gq = desc.contains(&u);
                if yes { model[u.index()] &= in_gq; } else if in_gq { model[u.index()] = false; }
            }
            cand.apply(&g, q, yes);
            for u in g.nodes() {
                prop_assert_eq!(cand.is_alive(u), model[u.index()]);
            }
            prop_assert_eq!(cand.count(), model.iter().filter(|&&a| a).count());
        }
        // Unwind entirely.
        while let Some(prev) = history.pop() {
            prop_assert!(cand.undo());
            model = prev;
            for u in g.nodes() {
                prop_assert_eq!(cand.is_alive(u), model[u.index()]);
            }
        }
        prop_assert!(!cand.undo());
    }

    /// Text round-trip preserves the hierarchy exactly.
    #[test]
    fn io_roundtrip(n in 1usize..60, frac in 0.0f64..0.4, seed in 0u64..1000) {
        let g = dag_from_seed(n.max(3), frac, seed);
        let mut buf = Vec::new();
        aigs_graph::io::write_hierarchy(&g, &mut buf).unwrap();
        let g2 = aigs_graph::io::read_hierarchy(std::io::BufReader::new(&buf[..])).unwrap();
        prop_assert_eq!(g, g2);
    }

    /// NodeBitSet behaves exactly like a reference HashSet model under an
    /// arbitrary op sequence.
    #[test]
    fn bitset_matches_set_model(
        n in 1usize..200,
        ops in prop::collection::vec((0u8..6, 0u32..200), 1..60),
    ) {
        use std::collections::BTreeSet;
        let mut bits = aigs_graph::NodeBitSet::empty(n);
        let mut other = aigs_graph::NodeBitSet::empty(n);
        let mut model: BTreeSet<usize> = BTreeSet::new();
        let mut other_model: BTreeSet<usize> = BTreeSet::new();
        for (op, raw) in ops {
            let v = (raw as usize) % n;
            match op {
                0 => {
                    bits.insert(NodeId::new(v));
                    model.insert(v);
                }
                1 => {
                    bits.remove(NodeId::new(v));
                    model.remove(&v);
                }
                2 => {
                    other.insert(NodeId::new(v));
                    other_model.insert(v);
                }
                3 => {
                    bits.intersect_with(&other);
                    model = model.intersection(&other_model).cloned().collect();
                }
                4 => {
                    bits.subtract(&other);
                    model = model.difference(&other_model).cloned().collect();
                }
                _ => {
                    bits.union_with(&other);
                    model = model.union(&other_model).cloned().collect();
                }
            }
            prop_assert_eq!(bits.count(), model.len());
            let members: Vec<usize> = bits.iter().map(|u| u.index()).collect();
            let expected: Vec<usize> = model.iter().cloned().collect();
            prop_assert_eq!(members, expected);
            prop_assert_eq!(
                bits.intersection_count(&other),
                model.intersection(&other_model).count()
            );
            match model.len() {
                1 => prop_assert_eq!(
                    bits.sole_member().map(|u| u.index()),
                    model.iter().next().cloned()
                ),
                _ => prop_assert_eq!(bits.sole_member(), None),
            }
        }
    }

    /// Depths computed via topological relaxation equal longest-path depths
    /// computed by brute-force DFS.
    #[test]
    fn depths_are_longest_paths(n in 2usize..40, frac in 0.0f64..0.4, seed in 0u64..1000) {
        let g = dag_from_seed(n, frac, seed);
        let depths = g.depths();
        // Brute force: longest path from root via memoised recursion on the
        // reverse graph.
        fn longest(g: &aigs_graph::Dag, u: NodeId, memo: &mut [i64]) -> i64 {
            if memo[u.index()] >= 0 {
                return memo[u.index()];
            }
            let d = g
                .parents(u)
                .iter()
                .map(|&p| longest(g, p, memo) + 1)
                .max()
                .unwrap_or(0);
            memo[u.index()] = d;
            d
        }
        let mut memo = vec![-1i64; g.node_count()];
        for u in g.nodes() {
            prop_assert_eq!(depths[u.index()] as i64, longest(&g, u, &mut memo));
        }
    }
}

#[cfg(feature = "serde")]
mod serde_roundtrip {
    use super::*;

    #[test]
    fn dag_serde_json_roundtrip() {
        let g = dag_from_seed(40, 0.2, 99);
        let json = serde_json::to_string(&g).unwrap();
        let g2: aigs_graph::Dag = serde_json::from_str(&json).unwrap();
        assert_eq!(g, g2);
    }
}
