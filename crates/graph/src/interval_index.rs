//! GRAIL-style interval reachability index for large DAGs.
//!
//! [`crate::ReachClosure`] answers `reach` in O(1) but costs n²/8 bytes —
//! ~100 MB at the paper's scale and unaffordable well before 10⁶ nodes.
//! [`IntervalIndex`] is the classic middle ground (Yıldırım, Chelaru,
//! Saraiya: *GRAIL*, VLDB 2010): `k` randomised post-order labelings assign
//! each node an interval that *contains* all its descendants' intervals.
//! Interval containment in every labeling is a necessary condition for
//! reachability, so a failed containment refutes `reach` in O(k); positive
//! candidates are confirmed by a pruned DFS that skips any subtree whose
//! interval already fails. Exactness is preserved; only the time/memory
//! trade-off changes: O(k·n) memory, O(1) negative answers (the common case
//! in search sessions — most queries answer *no*), and pruned-DFS positives.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::{Dag, NodeId};

/// Exact reachability index with O(k·n) memory.
#[derive(Debug, Clone)]
pub struct IntervalIndex {
    /// `k` labelings; each stores `(low, post)` per node with the GRAIL
    /// invariant `low(u) = min(post(u), min over children's low)` and
    /// `interval(u) = [low(u), post(u)]ᵏ ⊇ interval(descendant)`.
    labelings: Vec<Labeling>,
}

#[derive(Debug, Clone)]
struct Labeling {
    low: Vec<u32>,
    post: Vec<u32>,
}

impl Labeling {
    #[inline]
    fn may_reach(&self, u: NodeId, v: NodeId) -> bool {
        self.low[u.index()] <= self.low[v.index()] && self.post[v.index()] <= self.post[u.index()]
    }
}

impl IntervalIndex {
    /// Builds `k` randomised labelings (k = 2–5 is typical; more labelings
    /// refute more negatives immediately at k extra words per node).
    pub fn build<R: Rng>(dag: &Dag, k: usize, rng: &mut R) -> Self {
        assert!(k >= 1, "at least one labeling");
        let labelings = (0..k).map(|_| Self::one_labeling(dag, rng)).collect();
        IntervalIndex { labelings }
    }

    /// One post-order labeling with a random child-visit order.
    fn one_labeling<R: Rng>(dag: &Dag, rng: &mut R) -> Labeling {
        let n = dag.node_count();
        let mut low = vec![u32::MAX; n];
        let mut post = vec![0u32; n];
        let mut visited = vec![false; n];
        let mut clock = 0u32;

        // Iterative DFS from the root with shuffled child order. A DAG node
        // is labelled once (first visit); its interval still contains every
        // descendant because post-order numbers of descendants are assigned
        // before (or low-propagated into) the ancestor's.
        let mut order_buf: Vec<NodeId> = Vec::new();
        let mut stack: Vec<(NodeId, usize, Vec<NodeId>)> = Vec::new();
        let root = dag.root();
        visited[root.index()] = true;
        let mut kids: Vec<NodeId> = dag.children(root).to_vec();
        kids.shuffle(rng);
        stack.push((root, 0, kids));
        while let Some((u, ci, kids)) = stack.last_mut() {
            if *ci < kids.len() {
                let c = kids[*ci];
                *ci += 1;
                if !visited[c.index()] {
                    visited[c.index()] = true;
                    order_buf.clear();
                    order_buf.extend_from_slice(dag.children(c));
                    let mut ck = std::mem::take(&mut order_buf);
                    ck.shuffle(rng);
                    stack.push((c, 0, ck));
                } else {
                    // Cross edge to an already-labelled node: fold its low
                    // into ours at pop time via the child scan below.
                }
            } else {
                let u = *u;
                post[u.index()] = clock;
                let mut lo = clock;
                for &c in dag.children(u) {
                    lo = lo.min(low[c.index()]);
                }
                low[u.index()] = lo;
                clock += 1;
                stack.pop();
            }
        }
        debug_assert!(visited.iter().all(|&v| v), "root reaches every node");
        Labeling { low, post }
    }

    /// Number of labelings `k`.
    pub fn labelings(&self) -> usize {
        self.labelings.len()
    }

    /// Exact reachability test: O(k) when any labeling refutes, pruned DFS
    /// otherwise. Allocates DFS scratch for the (rare) unfiltered case;
    /// hot paths should hold buffers and call
    /// [`IntervalIndex::reaches_with`] instead.
    pub fn reaches(&self, dag: &Dag, u: NodeId, v: NodeId) -> bool {
        // The O(k) settles-most-queries checks come before any allocation.
        if u == v {
            return true;
        }
        if !self.may_reach(u, v) {
            return false;
        }
        let mut visited = crate::VisitedSet::new(dag.node_count());
        let mut stack = Vec::new();
        self.reaches_with(dag, u, v, &mut visited, &mut stack)
    }

    /// Allocation-free [`IntervalIndex::reaches`]: the caller provides a
    /// [`crate::VisitedSet`] sized for the graph plus a stack buffer, both
    /// cleared here, so repeated queries never allocate once warm.
    pub fn reaches_with(
        &self,
        dag: &Dag,
        u: NodeId,
        v: NodeId,
        visited: &mut crate::VisitedSet,
        stack: &mut Vec<NodeId>,
    ) -> bool {
        if u == v {
            return true;
        }
        if !self.may_reach(u, v) {
            return false;
        }
        // Pruned DFS: skip children whose intervals already refute.
        visited.clear();
        stack.clear();
        visited.insert(u);
        stack.push(u);
        while let Some(x) = stack.pop() {
            for &c in dag.children(x) {
                if c == v {
                    return true;
                }
                if self.may_reach(c, v) && visited.insert(c) {
                    stack.push(c);
                }
            }
        }
        false
    }

    /// The O(k) necessary condition alone (no DFS confirmation). Useful for
    /// bulk pruning; `false` is definitive, `true` is only "maybe".
    #[inline]
    pub fn may_reach(&self, u: NodeId, v: NodeId) -> bool {
        self.labelings.iter().all(|l| l.may_reach(u, v))
    }

    /// Memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.labelings
            .iter()
            .map(|l| (l.low.len() + l.post.len()) * std::mem::size_of::<u32>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::dag_from_edges;
    use crate::generate::{random_dag, DagConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn exact_on_diamond() {
        let g = dag_from_edges(6, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (2, 5)]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let idx = IntervalIndex::build(&g, 3, &mut rng);
        assert_eq!(idx.labelings(), 3);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(idx.reaches(&g, u, v), g.reaches(u, v), "({u},{v})");
            }
        }
    }

    #[test]
    fn exact_on_random_dags() {
        for seed in 0..20u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let g = random_dag(&DagConfig::bushy(120, 0.25), &mut rng);
            let idx = IntervalIndex::build(&g, 2, &mut rng);
            for u in g.nodes() {
                let truth = g.descendants(u);
                for v in g.nodes() {
                    assert_eq!(
                        idx.reaches(&g, u, v),
                        truth.contains(&v),
                        "seed {seed}, ({u},{v})"
                    );
                }
            }
        }
    }

    #[test]
    fn may_reach_never_false_negative() {
        // The interval condition must be NECESSARY: whenever reach holds,
        // may_reach holds in every labeling.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let g = random_dag(&DagConfig::bushy(200, 0.2), &mut rng);
        let idx = IntervalIndex::build(&g, 4, &mut rng);
        for u in g.nodes() {
            for v in g.descendants(u) {
                assert!(idx.may_reach(u, v), "false negative ({u},{v})");
            }
        }
    }

    #[test]
    fn memory_is_linear() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = random_dag(&DagConfig::bushy(1000, 0.1), &mut rng);
        let idx = IntervalIndex::build(&g, 3, &mut rng);
        // 3 labelings × 2 arrays × 4 bytes × n.
        assert_eq!(idx.memory_bytes(), 3 * 2 * 4 * 1000);
        // Far below the closure's n²/8.
        let closure = crate::ReachClosure::build(&g);
        assert!(idx.memory_bytes() * 4 < closure.memory_bytes());
    }

    #[test]
    fn pruning_actually_rejects_most_negatives() {
        // On a taxonomy-shaped DAG, the O(k) filter should settle the vast
        // majority of non-reachable pairs without any DFS.
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let g = random_dag(&DagConfig::bushy(400, 0.1), &mut rng);
        let idx = IntervalIndex::build(&g, 3, &mut rng);
        let mut filtered = 0usize;
        let mut negatives = 0usize;
        for u in g.nodes() {
            for v in g.nodes() {
                if !g.reaches(u, v) {
                    negatives += 1;
                    if !idx.may_reach(u, v) {
                        filtered += 1;
                    }
                }
            }
        }
        assert!(
            filtered * 10 >= negatives * 9,
            "only {filtered}/{negatives} negatives filtered"
        );
    }
}
