//! Random hierarchy generators.
//!
//! Used by tests, property tests, the dataset-synthesis crate and the
//! benchmark harness. All generators are deterministic given a seeded RNG.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::{Dag, HierarchyBuilder, NodeId};

/// Where a new node attaches when growing a random tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttachBias {
    /// Uniformly over existing nodes: produces bushy, log-depth trees.
    Uniform,
    /// Prefer recently added nodes with geometric decay `0 < p <= 1`
    /// (`p = 1` degenerates to a path): produces deep trees.
    PreferRecent(f64),
    /// Preferential attachment (probability ∝ current out-degree + 1):
    /// produces a few very-high-degree hubs, like category taxonomies.
    Preferential,
}

/// Configuration for [`random_tree`].
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Total node count (≥ 1).
    pub nodes: usize,
    /// Reject attachments that would exceed this out-degree.
    pub max_out_degree: Option<usize>,
    /// Reject attachments that would exceed this depth.
    pub max_depth: Option<u32>,
    /// Attachment bias.
    pub bias: AttachBias,
}

impl TreeConfig {
    /// A bushy tree of `n` nodes with no degree/depth caps.
    pub fn bushy(n: usize) -> Self {
        TreeConfig {
            nodes: n,
            max_out_degree: None,
            max_depth: None,
            bias: AttachBias::Uniform,
        }
    }
}

/// Grows a random tree node by node.
///
/// Every node `i > 0` picks an existing parent according to the configured
/// bias, retrying (bounded) when degree/depth caps are violated and falling
/// back to the root if necessary (the root is exempt from the degree cap so
/// generation always succeeds).
pub fn random_tree<R: Rng>(cfg: &TreeConfig, rng: &mut R) -> Dag {
    assert!(cfg.nodes >= 1, "tree must have at least one node");
    let n = cfg.nodes;
    let mut parent_of = vec![u32::MAX; n];
    let mut out_deg = vec![0u32; n];
    let mut depth = vec![0u32; n];

    for i in 1..n {
        let pick = |rng: &mut R, i: usize, out_deg: &[u32]| -> usize {
            match cfg.bias {
                AttachBias::Uniform => rng.gen_range(0..i),
                AttachBias::PreferRecent(p) => {
                    // Geometric walk back from the newest node.
                    let mut j = i - 1;
                    while j > 0 && rng.gen::<f64>() > p {
                        j -= 1;
                    }
                    j
                }
                AttachBias::Preferential => {
                    // Weight ∝ out_degree + 1; linear scan is fine at the
                    // scales used in tests and dataset synthesis.
                    let total: u64 = out_deg[..i].iter().map(|&d| d as u64 + 1).sum();
                    let mut ticket = rng.gen_range(0..total);
                    for (j, &d) in out_deg[..i].iter().enumerate() {
                        let w = d as u64 + 1;
                        if ticket < w {
                            return j;
                        }
                        ticket -= w;
                    }
                    i - 1
                }
            }
        };

        let mut parent = 0usize;
        let mut ok = false;
        for _ in 0..32 {
            let cand = pick(rng, i, &out_deg);
            let deg_ok = cfg
                .max_out_degree
                .is_none_or(|cap| (out_deg[cand] as usize) < cap || cand == 0);
            let depth_ok = cfg.max_depth.is_none_or(|cap| depth[cand] < cap);
            if deg_ok && depth_ok {
                parent = cand;
                ok = true;
                break;
            }
        }
        if !ok {
            parent = 0; // root absorbs the overflow
        }
        parent_of[i] = parent as u32;
        out_deg[parent] += 1;
        depth[i] = depth[parent] + 1;
    }

    let mut b = HierarchyBuilder::new();
    for i in 0..n {
        b.add_node(format!("v{i}")).expect("labels are unique");
    }
    for (i, &p) in parent_of.iter().enumerate().skip(1) {
        b.add_edge(NodeId(p), NodeId::new(i))
            .expect("edge endpoints exist");
    }
    b.build().expect("generated tree is a valid hierarchy")
}

/// Configuration for [`random_dag`].
#[derive(Debug, Clone)]
pub struct DagConfig {
    /// The base tree.
    pub tree: TreeConfig,
    /// Fraction of nodes (0..1) that receive one extra parent, turning the
    /// tree into a proper DAG while staying acyclic and single-rooted.
    pub extra_parent_fraction: f64,
}

impl DagConfig {
    /// A DAG over a bushy base tree with `frac` extra-parent nodes.
    pub fn bushy(n: usize, frac: f64) -> Self {
        DagConfig {
            tree: TreeConfig::bushy(n),
            extra_parent_fraction: frac,
        }
    }
}

/// Generates a random single-rooted DAG: a random tree plus extra
/// cross-parent edges that respect the tree's topological (id) order, so no
/// cycle can form and the root stays unique.
pub fn random_dag<R: Rng>(cfg: &DagConfig, rng: &mut R) -> Dag {
    let tree = random_tree(&cfg.tree, rng);
    let n = tree.node_count();
    if n < 3 || cfg.extra_parent_fraction <= 0.0 {
        return tree;
    }
    let extra = ((n as f64) * cfg.extra_parent_fraction).round() as usize;

    // Node ids are a topological order by construction of `random_tree`
    // (every node attaches to an earlier node), so any edge small -> large
    // keeps acyclicity.
    let mut b = HierarchyBuilder::new().dedup_edges(true);
    for i in 0..n {
        b.add_node(tree.label(NodeId::new(i))).expect("unique");
    }
    for u in tree.nodes() {
        for &c in tree.children(u) {
            b.add_edge(u, c).expect("valid");
        }
    }
    let mut targets: Vec<usize> = (2..n).collect();
    targets.shuffle(rng);
    for &t in targets.iter().take(extra) {
        let p = rng.gen_range(0..t.max(1));
        // Skip if p is already t's tree parent; dedup handles exact repeats.
        if tree.parents(NodeId::new(t)).contains(&NodeId::new(p)) {
            continue;
        }
        b.add_edge(NodeId::new(p), NodeId::new(t)).expect("valid");
    }
    b.build().expect("generated DAG is valid")
}

/// A path (chain) hierarchy of `n` nodes — the best case for binary search.
pub fn path_graph(n: usize) -> Dag {
    assert!(n >= 1);
    let mut b = HierarchyBuilder::new();
    for i in 0..n {
        b.add_node(format!("v{i}")).unwrap();
    }
    for i in 1..n {
        b.add_edge(NodeId::new(i - 1), NodeId::new(i)).unwrap();
    }
    b.build().unwrap()
}

/// A star: root with `n - 1` leaf children — the worst case for any policy
/// (every query eliminates at most one leaf).
pub fn star_graph(n: usize) -> Dag {
    assert!(n >= 1);
    let mut b = HierarchyBuilder::new();
    for i in 0..n {
        b.add_node(format!("v{i}")).unwrap();
    }
    for i in 1..n {
        b.add_edge(NodeId::new(0), NodeId::new(i)).unwrap();
    }
    b.build().unwrap()
}

/// A complete `k`-ary tree of the given depth (depth 0 = single node).
pub fn complete_kary_tree(k: usize, depth: u32) -> Dag {
    assert!(k >= 1);
    let mut b = HierarchyBuilder::new();
    let root = b.add_node("v0").unwrap();
    let mut frontier = vec![root];
    let mut next_id = 1usize;
    for _ in 0..depth {
        let mut next = Vec::with_capacity(frontier.len() * k);
        for &u in &frontier {
            for _ in 0..k {
                let c = b.add_node(format!("v{next_id}")).unwrap();
                next_id += 1;
                b.add_edge(u, c).unwrap();
                next.push(c);
            }
        }
        frontier = next;
    }
    b.build().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn random_tree_is_a_valid_tree() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for bias in [
            AttachBias::Uniform,
            AttachBias::PreferRecent(0.5),
            AttachBias::Preferential,
        ] {
            let cfg = TreeConfig {
                nodes: 200,
                max_out_degree: Some(8),
                max_depth: Some(12),
                bias,
            };
            let g = random_tree(&cfg, &mut rng);
            assert_eq!(g.node_count(), 200);
            assert!(g.is_tree(), "{bias:?}");
            g.validate().unwrap();
        }
    }

    #[test]
    fn random_tree_determinism() {
        let cfg = TreeConfig::bushy(64);
        let a = random_tree(&cfg, &mut ChaCha8Rng::seed_from_u64(1));
        let b = random_tree(&cfg, &mut ChaCha8Rng::seed_from_u64(1));
        let c = random_tree(&cfg, &mut ChaCha8Rng::seed_from_u64(2));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn degree_cap_respected_except_root() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let cfg = TreeConfig {
            nodes: 300,
            max_out_degree: Some(3),
            max_depth: None,
            bias: AttachBias::Preferential,
        };
        let g = random_tree(&cfg, &mut rng);
        for u in g.nodes() {
            if u != g.root() {
                assert!(g.out_degree(u) <= 3, "{u} exceeded degree cap");
            }
        }
    }

    #[test]
    fn random_dag_is_valid_and_not_tree() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let g = random_dag(&DagConfig::bushy(300, 0.2), &mut rng);
        g.validate().unwrap();
        assert!(!g.is_tree());
        assert!(g.edge_count() > 299);
        // Root still reaches everything.
        assert_eq!(g.descendants(g.root()).len(), g.node_count());
    }

    #[test]
    fn random_dag_zero_fraction_is_tree() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let g = random_dag(&DagConfig::bushy(100, 0.0), &mut rng);
        assert!(g.is_tree());
    }

    #[test]
    fn fixed_shapes() {
        let p = path_graph(5);
        assert_eq!(p.height(), 4);
        assert_eq!(p.max_out_degree(), 1);

        let s = star_graph(6);
        assert_eq!(s.height(), 1);
        assert_eq!(s.max_out_degree(), 5);
        assert_eq!(s.leaf_count(), 5);

        let k = complete_kary_tree(3, 2);
        assert_eq!(k.node_count(), 1 + 3 + 9);
        assert_eq!(k.height(), 2);
        assert!(k.is_tree());

        let single = complete_kary_tree(4, 0);
        assert_eq!(single.node_count(), 1);
    }
}
