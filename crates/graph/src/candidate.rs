//! Mutable candidate-set bookkeeping with undo.
//!
//! `FrameworkIGS` (Alg. 1) shrinks the candidate graph after every answer:
//! *yes* at `q` keeps `G_q`, *no* removes `G_q`. [`CandidateSet`] implements
//! both updates over an alive bitmap, and journals every mutation so the
//! exact decision-tree builder can roll the state back when it switches from
//! the *yes* branch to the *no* branch of a query.

use crate::traversal::BfsScratch;
use crate::{Dag, NodeId};

/// The set of still-possible target nodes, with LIFO undo.
///
/// Undo state is a flat arena journal: killed nodes append to one shared
/// `entries` vector and `frame_starts` marks each update's slice, so
/// applying an answer never allocates once the buffers are warm.
#[derive(Debug, Clone)]
pub struct CandidateSet {
    alive: Vec<bool>,
    alive_count: usize,
    /// Killed nodes of every live frame, concatenated.
    entries: Vec<NodeId>,
    /// Start offset of each frame inside `entries`.
    frame_starts: Vec<u32>,
    scratch: BfsScratch,
}

impl CandidateSet {
    /// All `n` nodes alive.
    pub fn new(n: usize) -> Self {
        CandidateSet {
            alive: vec![true; n],
            alive_count: n,
            entries: Vec::new(),
            frame_starts: Vec::new(),
            scratch: BfsScratch::new(n),
        }
    }

    /// Re-initialises to all `n` nodes alive, reusing every buffer — the
    /// allocation-free equivalent of `*self = CandidateSet::new(n)` that
    /// policy `reset()` implementations call once per session.
    pub fn reset(&mut self, n: usize) {
        self.alive.clear();
        self.alive.resize(n, true);
        self.alive_count = n;
        self.entries.clear();
        self.frame_starts.clear();
        if self.scratch.visited.capacity() != n {
            self.scratch = BfsScratch::new(n);
        }
    }

    /// Number of alive candidates.
    #[inline]
    pub fn count(&self) -> usize {
        self.alive_count
    }

    /// True when `u` is still a candidate.
    #[inline]
    pub fn is_alive(&self, u: NodeId) -> bool {
        self.alive[u.index()]
    }

    /// The single remaining candidate, when the search has converged.
    pub fn sole(&self) -> Option<NodeId> {
        if self.alive_count != 1 {
            return None;
        }
        self.alive.iter().position(|&a| a).map(NodeId::new)
    }

    /// Iterates over alive candidates in id order.
    pub fn iter_alive(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| NodeId::new(i))
    }

    /// Σ `weight[u]` over alive `u` reachable from `q` — the
    /// `GetReachableSetWeight` subroutine (Alg. 3), one BFS.
    pub fn reachable_weight(&mut self, dag: &Dag, q: NodeId, weight: &[f64]) -> f64 {
        let alive = &self.alive;
        let mut total = 0.0;
        self.scratch
            .bfs_forward(dag, q, |u| alive[u.index()], |u| total += weight[u.index()]);
        total
    }

    /// Number of alive nodes reachable from `q`, one BFS.
    pub fn reachable_count(&mut self, dag: &Dag, q: NodeId) -> usize {
        let alive = &self.alive;
        self.scratch
            .bfs_forward(dag, q, |u| alive[u.index()], |_| {})
    }

    /// Both Σ `weight[u]` and the node count over alive `u` reachable from
    /// `q`, in a single BFS — the per-candidate evaluation of `GreedyNaive`
    /// (Alg. 2 line 5) fused with the informativeness check.
    pub fn reachable_weight_count(&mut self, dag: &Dag, q: NodeId, weight: &[f64]) -> (f64, usize) {
        let alive = &self.alive;
        let mut total = 0.0;
        let count =
            self.scratch
                .bfs_forward(dag, q, |u| alive[u.index()], |u| total += weight[u.index()]);
        (total, count)
    }

    /// Applies a *no* answer at `q`: removes every alive node of `G_q`.
    /// Returns how many nodes died. Journals a frame for [`CandidateSet::undo`].
    ///
    /// `q` must be alive. Queries on eliminated nodes carry no information
    /// (their answer is deducible), and for alive `q` the BFS-through-alive
    /// update used here coincides with intersecting against the *original*
    /// descendant set `G_q` — because descendant sets are downward closed,
    /// any original path from an alive `q` to an alive node stays alive.
    pub fn apply_no(&mut self, dag: &Dag, q: NodeId) -> usize {
        debug_assert!(self.is_alive(q), "queries must target alive candidates");
        let start = self.entries.len();
        {
            let alive = &self.alive;
            let entries = &mut self.entries;
            self.scratch
                .bfs_forward(dag, q, |u| alive[u.index()], |u| entries.push(u));
        }
        let n = self.entries.len() - start;
        for i in start..self.entries.len() {
            self.alive[self.entries[i].index()] = false;
        }
        self.alive_count -= n;
        self.frame_starts.push(start as u32);
        n
    }

    /// Applies a *yes* answer at `q`: keeps only alive nodes of `G_q`.
    /// Returns how many nodes died. Same alive-`q` precondition as
    /// [`CandidateSet::apply_no`].
    pub fn apply_yes(&mut self, dag: &Dag, q: NodeId) -> usize {
        debug_assert!(self.is_alive(q), "queries must target alive candidates");
        // Mark the survivors, then sweep the rest.
        {
            let alive = &self.alive;
            self.scratch
                .bfs_forward(dag, q, |u| alive[u.index()], |_| {});
        }
        let start = self.entries.len();
        for (i, slot) in self.alive.iter_mut().enumerate() {
            if *slot && !self.scratch.visited.contains(NodeId::new(i)) {
                *slot = false;
                self.entries.push(NodeId::new(i));
            }
        }
        let n = self.entries.len() - start;
        self.alive_count -= n;
        self.frame_starts.push(start as u32);
        n
    }

    /// Applies `answer` at `q` ([`CandidateSet::apply_yes`] /
    /// [`CandidateSet::apply_no`]).
    pub fn apply(&mut self, dag: &Dag, q: NodeId, answer: bool) -> usize {
        if answer {
            self.apply_yes(dag, q)
        } else {
            self.apply_no(dag, q)
        }
    }

    /// Like [`CandidateSet::apply`] but intersects/subtracts against the
    /// **original-graph** descendant set `G_q`, with no aliveness
    /// precondition on `q`. For alive `q` the two coincide; for eliminated
    /// `q` only this variant is exact. Used by the decision-tree builder,
    /// which must judge the consistency of *any* answer a wasteful policy
    /// might probe.
    pub fn apply_original(&mut self, dag: &Dag, q: NodeId, answer: bool) -> usize {
        // Full-graph BFS: traverse everything, kill/keep by aliveness.
        {
            let always = |_u: NodeId| true;
            self.scratch.bfs_forward(dag, q, always, |_| {});
        }
        let start = self.entries.len();
        for (i, slot) in self.alive.iter_mut().enumerate() {
            if !*slot {
                continue;
            }
            let in_gq = self.scratch.visited.contains(NodeId::new(i));
            if in_gq != answer {
                *slot = false;
                self.entries.push(NodeId::new(i));
            }
        }
        let n = self.entries.len() - start;
        self.alive_count -= n;
        self.frame_starts.push(start as u32);
        n
    }

    /// The nodes killed by the most recent (not yet undone) update. Lets
    /// callers maintain derived aggregates (e.g. alive probability mass) in
    /// O(Δ) instead of rescanning all candidates.
    pub fn last_frame(&self) -> &[NodeId] {
        match self.frame_starts.last() {
            None => &[],
            Some(&start) => &self.entries[start as usize..],
        }
    }

    /// Reverts the most recent update. Returns `false` when no update is
    /// left to revert.
    pub fn undo(&mut self) -> bool {
        match self.frame_starts.pop() {
            None => false,
            Some(start) => {
                let start = start as usize;
                for &u in &self.entries[start..] {
                    self.alive[u.index()] = true;
                }
                self.alive_count += self.entries.len() - start;
                self.entries.truncate(start);
                true
            }
        }
    }

    /// Number of journalled updates.
    pub fn depth(&self) -> usize {
        self.frame_starts.len()
    }

    /// Forgets the journal (keeps the current alive state). Useful when a
    /// session will never backtrack and memory matters.
    pub fn forget_history(&mut self) {
        self.entries.clear();
        self.frame_starts.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::dag_from_edges;

    fn diamond() -> Dag {
        // 0 -> {1,2}; 1 -> 3; 2 -> 3; 3 -> 4; 2 -> 5
        dag_from_edges(6, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (2, 5)]).unwrap()
    }

    #[test]
    fn no_answer_kills_subgraph() {
        let g = diamond();
        let mut c = CandidateSet::new(g.node_count());
        let killed = c.apply_no(&g, NodeId::new(1));
        // G_1 = {1, 3, 4}
        assert_eq!(killed, 3);
        assert_eq!(c.count(), 3);
        assert!(c.is_alive(NodeId::new(0)));
        assert!(!c.is_alive(NodeId::new(3)));
        assert!(c.is_alive(NodeId::new(5)));
    }

    #[test]
    fn yes_answer_keeps_subgraph() {
        let g = diamond();
        let mut c = CandidateSet::new(g.node_count());
        let killed = c.apply_yes(&g, NodeId::new(2));
        // G_2 = {2, 3, 4, 5}; killed = {0, 1}
        assert_eq!(killed, 2);
        assert_eq!(c.count(), 4);
        let alive: Vec<usize> = c.iter_alive().map(|u| u.index()).collect();
        assert_eq!(alive, vec![2, 3, 4, 5]);
    }

    #[test]
    fn updates_compose_with_dag_semantics() {
        let g = diamond();
        let mut c = CandidateSet::new(g.node_count());
        c.apply_yes(&g, NodeId::new(2)); // {2,3,4,5}
        c.apply_no(&g, NodeId::new(3)); // kill {3,4} -> {2,5}
        let alive: Vec<usize> = c.iter_alive().map(|u| u.index()).collect();
        assert_eq!(alive, vec![2, 5]);
        c.apply_no(&g, NodeId::new(5)); // -> {2}
        assert_eq!(c.sole(), Some(NodeId::new(2)));
    }

    #[test]
    fn undo_roundtrip() {
        let g = diamond();
        let mut c = CandidateSet::new(g.node_count());
        let before: Vec<NodeId> = c.iter_alive().collect();
        c.apply_yes(&g, NodeId::new(1));
        c.apply_no(&g, NodeId::new(3));
        assert_eq!(c.depth(), 2);
        assert!(c.undo());
        assert!(c.undo());
        assert!(!c.undo());
        let after: Vec<NodeId> = c.iter_alive().collect();
        assert_eq!(before, after);
        assert_eq!(c.count(), g.node_count());
    }

    #[test]
    fn reachable_weight_counts_alive_only() {
        let g = diamond();
        let mut c = CandidateSet::new(g.node_count());
        let w = vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0];
        // G_2 ∩ alive = {2,3,4,5} -> 4+8+16+32 = 60
        assert_eq!(c.reachable_weight(&g, NodeId::new(2), &w), 60.0);
        c.apply_no(&g, NodeId::new(3)); // kill 3,4
        assert_eq!(c.reachable_weight(&g, NodeId::new(2), &w), 36.0);
        assert_eq!(c.reachable_count(&g, NodeId::new(2)), 2);
        // Dead start node -> zero.
        assert_eq!(c.reachable_weight(&g, NodeId::new(3), &w), 0.0);
    }

    #[test]
    fn sole_requires_exactly_one() {
        let g = diamond();
        let mut c = CandidateSet::new(g.node_count());
        assert_eq!(c.sole(), None);
        c.apply_no(&g, NodeId::new(1));
        c.apply_no(&g, NodeId::new(2));
        // Remaining: {0}
        assert_eq!(c.sole(), Some(NodeId::new(0)));
    }

    #[test]
    fn apply_original_handles_dead_queries() {
        // 0 -> {1,2}; 1 -> 3; 2 -> 3: node 3 has two parents.
        let g = dag_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let mut c = CandidateSet::new(4);
        // Yes at 2 keeps {2, 3}; node 1 is now dead but its original
        // descendant set still contains the alive node 3.
        c.apply_yes(&g, NodeId::new(2));
        assert!(!c.is_alive(NodeId::new(1)));
        assert!(c.is_alive(NodeId::new(3)));
        // A *no* on the dead node 1 must still eliminate 3 under
        // original-graph semantics.
        c.apply_original(&g, NodeId::new(1), false);
        assert!(!c.is_alive(NodeId::new(3)));
        assert_eq!(c.sole(), Some(NodeId::new(2)));
        // And undo restores both frames.
        assert!(c.undo());
        assert!(c.is_alive(NodeId::new(3)));
        assert!(c.undo());
        assert_eq!(c.count(), 4);
    }

    #[test]
    fn apply_original_matches_apply_for_alive_queries() {
        let g = dag_from_edges(6, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (2, 5)]).unwrap();
        for q in 1..6u32 {
            for ans in [true, false] {
                let mut a = CandidateSet::new(6);
                let mut b = CandidateSet::new(6);
                a.apply(&g, NodeId(q), ans);
                b.apply_original(&g, NodeId(q), ans);
                let alive_a: Vec<NodeId> = a.iter_alive().collect();
                let alive_b: Vec<NodeId> = b.iter_alive().collect();
                assert_eq!(alive_a, alive_b, "q={q} ans={ans}");
            }
        }
    }

    #[test]
    fn forget_history_blocks_undo() {
        let g = diamond();
        let mut c = CandidateSet::new(g.node_count());
        c.apply_no(&g, NodeId::new(1));
        c.forget_history();
        assert!(!c.undo());
        assert_eq!(c.count(), 3);
    }
}
