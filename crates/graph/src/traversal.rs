//! Reusable traversal primitives.
//!
//! Search policies run thousands of BFS passes per session; allocating and
//! clearing a `Vec<bool>` per pass would dominate. [`VisitedSet`] uses the
//! classic epoch trick: marking is a stamp write, clearing is an epoch bump.

use std::collections::VecDeque;

use crate::{Dag, NodeId};

/// An O(1)-clear visited set over node ids.
#[derive(Debug, Clone)]
pub struct VisitedSet {
    stamp: Vec<u32>,
    epoch: u32,
}

impl VisitedSet {
    /// Creates a set able to hold `n` node ids.
    pub fn new(n: usize) -> Self {
        VisitedSet {
            stamp: vec![0; n],
            epoch: 1,
        }
    }

    /// Number of ids the set can hold.
    pub fn capacity(&self) -> usize {
        self.stamp.len()
    }

    /// Clears the set in O(1) (amortised; a full rewrite happens once every
    /// `u32::MAX` clears to avoid stale stamps on wrap-around).
    pub fn clear(&mut self) {
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    /// Marks `u`; returns `true` when `u` was not yet marked this epoch.
    #[inline]
    pub fn insert(&mut self, u: NodeId) -> bool {
        let slot = &mut self.stamp[u.index()];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }

    /// True when `u` is marked in the current epoch.
    #[inline]
    pub fn contains(&self, u: NodeId) -> bool {
        self.stamp[u.index()] == self.epoch
    }

    /// Unmarks `u` (no-op when `u` is not marked). Stamps start at epoch 1,
    /// so writing 0 is always "absent".
    #[inline]
    pub fn remove(&mut self, u: NodeId) {
        self.stamp[u.index()] = 0;
    }
}

/// Scratch buffers for repeated BFS passes: a queue plus a [`VisitedSet`].
#[derive(Debug, Clone)]
pub struct BfsScratch {
    /// The visited set of the most recent traversal (readable afterwards).
    pub visited: VisitedSet,
    queue: VecDeque<NodeId>,
}

impl BfsScratch {
    /// Scratch sized for a graph of `n` nodes.
    pub fn new(n: usize) -> Self {
        BfsScratch {
            visited: VisitedSet::new(n),
            queue: VecDeque::new(),
        }
    }

    /// Forward BFS from `start`, invoking `visit` on every reachable node
    /// (including `start`). `alive` filters which nodes participate:
    /// a node failing the predicate is neither visited nor expanded.
    ///
    /// Returns the number of visited nodes.
    pub fn bfs_forward(
        &mut self,
        dag: &Dag,
        start: NodeId,
        mut alive: impl FnMut(NodeId) -> bool,
        mut visit: impl FnMut(NodeId),
    ) -> usize {
        self.visited.clear();
        self.queue.clear();
        if !alive(start) {
            return 0;
        }
        self.visited.insert(start);
        self.queue.push_back(start);
        let mut count = 0;
        while let Some(u) = self.queue.pop_front() {
            visit(u);
            count += 1;
            for &c in dag.children(u) {
                if alive(c) && self.visited.insert(c) {
                    self.queue.push_back(c);
                }
            }
        }
        count
    }

    /// Reverse BFS from `start` over parent edges; same contract as
    /// [`BfsScratch::bfs_forward`].
    pub fn bfs_reverse(
        &mut self,
        dag: &Dag,
        start: NodeId,
        mut alive: impl FnMut(NodeId) -> bool,
        mut visit: impl FnMut(NodeId),
    ) -> usize {
        self.visited.clear();
        self.queue.clear();
        if !alive(start) {
            return 0;
        }
        self.visited.insert(start);
        self.queue.push_back(start);
        let mut count = 0;
        while let Some(u) = self.queue.pop_front() {
            visit(u);
            count += 1;
            for &p in dag.parents(u) {
                if alive(p) && self.visited.insert(p) {
                    self.queue.push_back(p);
                }
            }
        }
        count
    }
}

/// Iterative post-order DFS over a *tree-shaped* child relation, yielding
/// `(node, entering)` events: `entering == true` on first visit, `false`
/// after all children are done. Works on DAGs too but then re-enters shared
/// nodes once per distinct parent path — callers on DAGs must dedupe.
pub fn dfs_events(dag: &Dag, start: NodeId, mut on_event: impl FnMut(NodeId, bool)) {
    // Stack entries: (node, next child index).
    let mut stack: Vec<(NodeId, usize)> = vec![(start, 0)];
    on_event(start, true);
    while let Some(&mut (u, ref mut ci)) = stack.last_mut() {
        let kids = dag.children(u);
        if *ci < kids.len() {
            let c = kids[*ci];
            *ci += 1;
            on_event(c, true);
            stack.push((c, 0));
        } else {
            on_event(u, false);
            stack.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::dag_from_edges;

    fn diamond() -> Dag {
        // 0 -> {1,2}; 1 -> 3; 2 -> 3; 3 -> 4
        dag_from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]).unwrap()
    }

    #[test]
    fn visited_set_epochs() {
        let mut v = VisitedSet::new(4);
        assert!(v.insert(NodeId::new(1)));
        assert!(!v.insert(NodeId::new(1)));
        assert!(v.contains(NodeId::new(1)));
        v.clear();
        assert!(!v.contains(NodeId::new(1)));
        assert!(v.insert(NodeId::new(1)));
    }

    #[test]
    fn visited_set_epoch_wraparound() {
        let mut v = VisitedSet::new(2);
        v.epoch = u32::MAX - 1;
        v.insert(NodeId::new(0));
        v.clear(); // epoch == MAX now
        assert!(!v.contains(NodeId::new(0)));
        v.insert(NodeId::new(1));
        v.clear(); // wraps: full rewrite
        assert!(!v.contains(NodeId::new(1)));
        assert!(v.insert(NodeId::new(1)));
    }

    #[test]
    fn bfs_forward_visits_descendants_once() {
        let g = diamond();
        let mut scratch = BfsScratch::new(g.node_count());
        let mut seen = Vec::new();
        let count = scratch.bfs_forward(&g, NodeId::new(0), |_| true, |u| seen.push(u));
        assert_eq!(count, 5);
        seen.sort();
        assert_eq!(seen.len(), 5); // node 3 visited once despite two parents
    }

    #[test]
    fn bfs_respects_alive_filter() {
        let g = diamond();
        let mut scratch = BfsScratch::new(g.node_count());
        // Kill node 1: 3 is still reachable via 2.
        let mut seen = Vec::new();
        scratch.bfs_forward(
            &g,
            NodeId::new(0),
            |u| u != NodeId::new(1),
            |u| seen.push(u),
        );
        seen.sort();
        assert_eq!(
            seen,
            vec![
                NodeId::new(0),
                NodeId::new(2),
                NodeId::new(3),
                NodeId::new(4)
            ]
        );
        // Kill both 1 and 2: nothing below 0 remains reachable.
        let mut seen = Vec::new();
        scratch.bfs_forward(
            &g,
            NodeId::new(0),
            |u| u != NodeId::new(1) && u != NodeId::new(2),
            |u| seen.push(u),
        );
        assert_eq!(seen, vec![NodeId::new(0)]);
    }

    #[test]
    fn bfs_reverse_collects_ancestors() {
        let g = diamond();
        let mut scratch = BfsScratch::new(g.node_count());
        let mut seen = Vec::new();
        scratch.bfs_reverse(&g, NodeId::new(3), |_| true, |u| seen.push(u));
        seen.sort();
        assert_eq!(
            seen,
            vec![
                NodeId::new(0),
                NodeId::new(1),
                NodeId::new(2),
                NodeId::new(3)
            ]
        );
    }

    #[test]
    fn bfs_dead_start_is_empty() {
        let g = diamond();
        let mut scratch = BfsScratch::new(g.node_count());
        let n = scratch.bfs_forward(&g, NodeId::new(0), |_| false, |_| panic!("no visits"));
        assert_eq!(n, 0);
    }

    #[test]
    fn dfs_events_bracket_properly() {
        // Chain 0 -> 1 -> 2.
        let g = dag_from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let mut events = Vec::new();
        dfs_events(&g, NodeId::new(0), |u, enter| {
            events.push((u.index(), enter))
        });
        assert_eq!(
            events,
            vec![
                (0, true),
                (1, true),
                (2, true),
                (2, false),
                (1, false),
                (0, false)
            ]
        );
    }
}
