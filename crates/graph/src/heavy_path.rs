//! Weighted heavy paths (Definition 10 of the paper).
//!
//! For an internal node `u`, the *heavy* child is the one whose subtree
//! carries the largest weight (ties broken towards the smallest node id, to
//! keep every policy deterministic). A weighted heavy path is a maximal chain
//! of heavy edges. Theorem 5 proves the middle point of a tree always lies on
//! the weighted heavy path containing the root — the fact `GreedyTree`
//! exploits — while `WIGS` binary-searches the *size*-weighted heavy path.

use crate::{Dag, NodeId, Tree};

/// Extracts the weighted heavy path starting at `start` in a tree-shaped
/// hierarchy: repeatedly steps to the child maximising `subtree_weight`,
/// until a leaf (under the `alive_child` filter) is reached.
///
/// `subtree_weight(c)` must return the current (possibly pruned) subtree
/// weight of `c`; `alive_child(c)` must reject children whose subtrees have
/// been eliminated by earlier *no* answers.
pub fn heavy_path_from<W, A>(
    dag: &Dag,
    start: NodeId,
    mut subtree_weight: W,
    mut alive_child: A,
) -> Vec<NodeId>
where
    W: FnMut(NodeId) -> f64,
    A: FnMut(NodeId) -> bool,
{
    let mut path = vec![start];
    let mut u = start;
    loop {
        let mut best: Option<(NodeId, f64)> = None;
        for &c in dag.children(u) {
            if !alive_child(c) {
                continue;
            }
            let w = subtree_weight(c);
            match best {
                None => best = Some((c, w)),
                Some((bc, bw)) => {
                    if w > bw || (w == bw && c < bc) {
                        best = Some((c, w));
                    }
                }
            }
        }
        match best {
            Some((c, _)) => {
                path.push(c);
                u = c;
            }
            None => return path,
        }
    }
}

/// A full heavy-path decomposition of a tree: every node belongs to exactly
/// one path; paths are stored root-of-path-first.
#[derive(Debug, Clone)]
pub struct HeavyPathDecomposition {
    /// `path_of[u]` = index of the path containing `u`.
    path_of: Vec<u32>,
    /// The paths, each a top-down chain of nodes.
    paths: Vec<Vec<NodeId>>,
}

impl HeavyPathDecomposition {
    /// Decomposes `tree` using per-node weights (`None` means size weights).
    pub fn new(tree: &Tree<'_>, weights: Option<&[f64]>) -> Self {
        let dag = tree.dag();
        let n = dag.node_count();
        let subtree: Vec<f64> = match weights {
            Some(w) => tree.subtree_weights(w),
            None => (0..n)
                .map(|i| tree.subtree_size(NodeId::new(i)) as f64)
                .collect(),
        };
        let mut path_of = vec![u32::MAX; n];
        let mut paths: Vec<Vec<NodeId>> = Vec::new();

        // Heads of heavy paths: the root, plus every node whose edge from its
        // parent is light. Walk pre-order; start a new path at each head.
        for &u in tree.preorder() {
            if path_of[u.index()] != u32::MAX {
                continue;
            }
            let id = paths.len() as u32;
            let chain = heavy_path_from(dag, u, |c| subtree[c.index()], |_| true);
            for &v in &chain {
                path_of[v.index()] = id;
            }
            paths.push(chain);
        }
        HeavyPathDecomposition { path_of, paths }
    }

    /// Number of heavy paths.
    pub fn path_count(&self) -> usize {
        self.paths.len()
    }

    /// The path containing `u` (`H(T, u)` in the paper's notation).
    pub fn path_containing(&self, u: NodeId) -> &[NodeId] {
        &self.paths[self.path_of[u.index()] as usize]
    }

    /// All paths.
    pub fn paths(&self) -> &[Vec<NodeId>] {
        &self.paths
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::dag_from_edges;

    fn sample() -> Dag {
        // 0 -> 1; 1 -> {2, 3, 4}; 3 -> {5, 6}
        dag_from_edges(7, &[(0, 1), (1, 2), (1, 3), (1, 4), (3, 5), (3, 6)]).unwrap()
    }

    #[test]
    fn size_heavy_path_follows_biggest_subtree() {
        let g = sample();
        let t = Tree::new(&g).unwrap();
        let path = heavy_path_from(&g, g.root(), |c| t.subtree_size(c) as f64, |_| true);
        // Subtree sizes: 1:6, 3:3 (largest among 2,3,4), then 5 (tie -> min id).
        let ids: Vec<usize> = path.iter().map(|u| u.index()).collect();
        assert_eq!(ids, vec![0, 1, 3, 5]);
    }

    #[test]
    fn weight_heavy_path_tracks_probability_mass() {
        let g = sample();
        let t = Tree::new(&g).unwrap();
        // Put all mass on node 4: the weighted heavy path leaves the size path.
        let mut w = vec![0.0; 7];
        w[4] = 1.0;
        let sub = t.subtree_weights(&w);
        let path = heavy_path_from(&g, g.root(), |c| sub[c.index()], |_| true);
        let ids: Vec<usize> = path.iter().map(|u| u.index()).collect();
        assert_eq!(ids, vec![0, 1, 4]);
    }

    #[test]
    fn alive_filter_skips_pruned_children() {
        let g = sample();
        let t = Tree::new(&g).unwrap();
        // Node 3's subtree eliminated: path detours to next-heaviest child.
        let path = heavy_path_from(
            &g,
            NodeId::new(1),
            |c| t.subtree_size(c) as f64,
            |c| c != NodeId::new(3),
        );
        let ids: Vec<usize> = path.iter().map(|u| u.index()).collect();
        assert_eq!(ids, vec![1, 2]); // ties 2 vs 4 broken to smallest id
    }

    #[test]
    fn decomposition_partitions_nodes() {
        let g = sample();
        let t = Tree::new(&g).unwrap();
        let hpd = HeavyPathDecomposition::new(&t, None);
        let mut seen = vec![0u32; g.node_count()];
        for p in hpd.paths() {
            assert!(!p.is_empty());
            for &u in p {
                seen[u.index()] += 1;
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "each node on exactly one path"
        );
        // Every node's reported path actually contains it.
        for u in g.nodes() {
            assert!(hpd.path_containing(u).contains(&u));
        }
    }

    #[test]
    fn decomposition_heavy_edges_at_most_one_per_node() {
        let g = sample();
        let t = Tree::new(&g).unwrap();
        let hpd = HeavyPathDecomposition::new(&t, None);
        // Known decomposition for the sample: [0,1,3,5], [2], [4], [6].
        assert_eq!(hpd.path_count(), 4);
        let main: Vec<usize> = hpd
            .path_containing(NodeId::new(0))
            .iter()
            .map(|u| u.index())
            .collect();
        assert_eq!(main, vec![0, 1, 3, 5]);
    }

    #[test]
    fn weighted_decomposition_differs_from_size() {
        let g = sample();
        let t = Tree::new(&g).unwrap();
        let mut w = vec![0.01; 7];
        w[4] = 5.0;
        let hpd = HeavyPathDecomposition::new(&t, Some(&w));
        let main: Vec<usize> = hpd
            .path_containing(NodeId::new(0))
            .iter()
            .map(|u| u.index())
            .collect();
        assert_eq!(main, vec![0, 1, 4]);
    }
}
