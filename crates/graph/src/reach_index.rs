//! `ReachIndex` — the pluggable reachability backend behind DAG policies.
//!
//! The search policies need three reachability primitives over a [`Dag`]:
//! point queries `reach(u, v)`, the descendant row `G_u` as a bitset (the
//! candidate-set update of `FrameworkIGS`), and `|G_u ∩ S|` counts (heavy
//! chain extraction). Three backends cover the whole size spectrum:
//!
//! | backend | memory | `reach` | row / count |
//! |---|---|---|---|
//! | [`ReachClosure`] | n²/8 bytes | O(1) | O(n/64) row AND |
//! | [`IntervalIndex`] (GRAIL) | 2·k·4·n bytes | O(k) negative, pruned DFS positive | DFS over `G_u` |
//! | BFS (no index) | 0 | DFS | DFS over `G_u` |
//!
//! All three are **exact** — only the time/memory trade-off changes — so a
//! policy produces the *identical query transcript* under every backend
//! (the `u64` candidate words it derives are equal bit for bit; the
//! property-test suites assert this). The closure disqualifies itself
//! around 10⁵ nodes (~100 MB and growing quadratically), which is exactly
//! where the million-node scenarios live; [`ReachIndex::auto`] picks the
//! closure below [`AUTO_CLOSURE_MAX_NODES`] and the interval tier above.
//!
//! Set operations on the DFS backends need scratch buffers; callers hold a
//! [`ReachScratch`] (one per policy/session, reused across queries) so the
//! hot path stays allocation-free, matching the `StepJournal` discipline of
//! the policy layer.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::{Dag, IntervalIndex, NodeBitSet, NodeId, ReachClosure, VisitedSet};

/// Node-count threshold of [`ReachIndex::auto`]: at or below this size the
/// transitive closure is built (≤ n²/8 = 8 MiB of rows at the threshold),
/// above it the GRAIL interval index (O(k·n) memory) is used instead.
pub const AUTO_CLOSURE_MAX_NODES: usize = 8192;

/// Labelings `k` used by auto-built interval indexes: each extra labeling
/// refutes more negatives in O(1) at 8 bytes per node; 3 settles the vast
/// majority of non-reachable pairs on taxonomy-shaped DAGs.
pub const AUTO_INTERVAL_LABELINGS: usize = 3;

/// Seed for the randomised labelings of auto-built interval indexes, fixed
/// so that `auto` is deterministic for a given hierarchy.
const AUTO_INTERVAL_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// An exact reachability backend over a [`Dag`] (see the module docs for
/// the tier table). Policies receive one through
/// `SearchContext` and stay backend-agnostic; the closure variant is still
/// reachable via [`ReachIndex::as_closure`] for word-level fast paths.
#[derive(Debug, Clone)]
pub enum ReachIndex {
    /// Full transitive closure: O(1) queries, O(n/64) row ops, n²/8 bytes.
    Closure(ReachClosure),
    /// GRAIL interval labelings: O(k·n) memory, O(k) negative answers,
    /// pruned-DFS positives and set operations.
    Interval(IntervalIndex),
    /// No index at all: every operation traverses the graph.
    Bfs,
}

/// Reusable buffers for the DFS-based [`ReachIndex`] operations. One
/// instance per policy/session; every operation clears what it uses, so the
/// scratch carries no state between calls.
#[derive(Debug, Clone)]
pub struct ReachScratch {
    /// Descendant-row output (doubles as the DFS visited set when filling,
    /// and as the doomed-set mask in
    /// [`ReachIndex::doomed_contributions`]).
    row: NodeBitSet,
    /// Ancestors-of-the-query mask for the frontier repair's full-delta
    /// fast path.
    anc: NodeBitSet,
    /// Epoch-cleared visited set for counting traversals.
    visited: VisitedSet,
    /// DFS stack.
    stack: Vec<NodeId>,
    /// Affected-ancestor list of the most recent frontier repair.
    affected: Vec<NodeId>,
    /// Per-node weight accumulator for the traversal-backed frontier
    /// repair. Invariant: all-zero between calls (re-zeroed along
    /// `affected`, never by a full sweep).
    acc_weight: Vec<u64>,
    /// Per-node count accumulator; same all-zero invariant.
    acc_count: Vec<u32>,
}

impl ReachScratch {
    /// Scratch sized for a graph of `n` nodes.
    pub fn new(n: usize) -> Self {
        ReachScratch {
            row: NodeBitSet::empty(n),
            anc: NodeBitSet::empty(n),
            visited: VisitedSet::new(n),
            stack: Vec::new(),
            affected: Vec::new(),
            acc_weight: vec![0; n],
            acc_count: vec![0; n],
        }
    }

    /// Number of node ids the buffers cover.
    pub fn universe(&self) -> usize {
        self.row.universe()
    }

    /// Re-sizes the buffers when the graph changed (no-op otherwise).
    fn ensure(&mut self, n: usize) {
        if self.row.universe() != n {
            self.row = NodeBitSet::empty(n);
            self.anc = NodeBitSet::empty(n);
            self.visited = VisitedSet::new(n);
            self.acc_weight = vec![0; n];
            self.acc_count = vec![0; n];
        }
    }
}

impl ReachIndex {
    /// Auto-selects a backend for `dag`: transitive closure at or below
    /// [`AUTO_CLOSURE_MAX_NODES`] nodes, GRAIL interval index above (with
    /// [`AUTO_INTERVAL_LABELINGS`] labelings and a fixed seed, so the choice
    /// is deterministic).
    pub fn auto(dag: &Dag) -> Self {
        if dag.node_count() <= AUTO_CLOSURE_MAX_NODES {
            Self::closure_for(dag)
        } else {
            Self::interval_for(dag, AUTO_INTERVAL_LABELINGS, AUTO_INTERVAL_SEED)
        }
    }

    /// Builds the closure backend for `dag`.
    pub fn closure_for(dag: &Dag) -> Self {
        ReachIndex::Closure(ReachClosure::build(dag))
    }

    /// Builds the interval backend for `dag` with `k` labelings randomised
    /// from `seed`.
    pub fn interval_for(dag: &Dag, k: usize, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        ReachIndex::Interval(IntervalIndex::build(dag, k, &mut rng))
    }

    /// Stable backend identifier: `"closure"`, `"interval"` or `"bfs"`.
    pub fn backend_name(&self) -> &'static str {
        match self {
            ReachIndex::Closure(_) => "closure",
            ReachIndex::Interval(_) => "interval",
            ReachIndex::Bfs => "bfs",
        }
    }

    /// The closure rows, when this backend stores them — the O(n/64)
    /// word-level fast path some policies special-case.
    pub fn as_closure(&self) -> Option<&ReachClosure> {
        match self {
            ReachIndex::Closure(c) => Some(c),
            _ => None,
        }
    }

    /// The descendant mask `G_u` **when it is already materialised** —
    /// i.e. an O(1) handle to the closure backend's stored row, `None`
    /// otherwise. This is the gate for mask-filtered walks over candidate
    /// lists (e.g. the greedy-DAG re-root filter): with a stored row each
    /// membership test is one bit probe, so filtering an existing frontier
    /// is cheaper than re-running the pruned BFS that derived it; without
    /// one, materialising the mask would itself cost a DFS over `G_u`
    /// (often *larger* than the walk being skipped), so callers should fall
    /// back to their traversal path instead of calling
    /// [`ReachIndex::descendants`].
    pub fn stored_mask(&self, u: NodeId) -> Option<&NodeBitSet> {
        match self {
            ReachIndex::Closure(c) => Some(c.descendants(u)),
            _ => None,
        }
    }

    /// Index memory in bytes (0 for the BFS backend).
    pub fn memory_bytes(&self) -> usize {
        match self {
            ReachIndex::Closure(c) => c.memory_bytes(),
            ReachIndex::Interval(i) => i.memory_bytes(),
            ReachIndex::Bfs => 0,
        }
    }

    /// Exact `reach(u, v)`. Convenience form that allocates DFS scratch for
    /// the non-closure backends; hot paths should use
    /// [`ReachIndex::reaches_with`].
    pub fn reaches(&self, dag: &Dag, u: NodeId, v: NodeId) -> bool {
        match self {
            ReachIndex::Closure(c) => c.reaches(u, v),
            _ => {
                let mut scratch = ReachScratch::new(dag.node_count());
                self.reaches_with(dag, u, v, &mut scratch)
            }
        }
    }

    /// Exact `reach(u, v)` using caller-held scratch (allocation-free once
    /// warm): O(1) on the closure, O(k) on interval-refuted negatives,
    /// (pruned) DFS otherwise.
    pub fn reaches_with(
        &self,
        dag: &Dag,
        u: NodeId,
        v: NodeId,
        scratch: &mut ReachScratch,
    ) -> bool {
        match self {
            ReachIndex::Closure(c) => c.reaches(u, v),
            ReachIndex::Interval(i) => {
                scratch.ensure(dag.node_count());
                i.reaches_with(dag, u, v, &mut scratch.visited, &mut scratch.stack)
            }
            ReachIndex::Bfs => {
                if u == v {
                    return true;
                }
                scratch.ensure(dag.node_count());
                scratch.visited.clear();
                scratch.stack.clear();
                scratch.visited.insert(u);
                scratch.stack.push(u);
                while let Some(x) = scratch.stack.pop() {
                    for &c in dag.children(x) {
                        if c == v {
                            return true;
                        }
                        if scratch.visited.insert(c) {
                            scratch.stack.push(c);
                        }
                    }
                }
                false
            }
        }
    }

    /// The descendant row `G_u` (original-graph descendants of `u`,
    /// including `u`) as a bitset: the closure hands out its stored row,
    /// the DFS backends fill `scratch` with one traversal. Either way the
    /// returned set is identical, which is what keeps word-granular
    /// candidate journaling bit-exact across backends.
    pub fn descendants<'s>(
        &'s self,
        dag: &Dag,
        u: NodeId,
        scratch: &'s mut ReachScratch,
    ) -> &'s NodeBitSet {
        match self {
            ReachIndex::Closure(c) => c.descendants(u),
            _ => {
                scratch.ensure(dag.node_count());
                let row = &mut scratch.row;
                let stack = &mut scratch.stack;
                row.clear();
                stack.clear();
                row.insert(u);
                stack.push(u);
                while let Some(x) = stack.pop() {
                    for &c in dag.children(x) {
                        if !row.contains(c) {
                            row.insert(c);
                            stack.push(c);
                        }
                    }
                }
                row
            }
        }
    }

    /// `|G_u ∩ other|` without materialising the intersection: an O(n/64)
    /// row AND on the closure, a counting DFS over `G_u` otherwise.
    pub fn intersection_count(
        &self,
        dag: &Dag,
        u: NodeId,
        other: &NodeBitSet,
        scratch: &mut ReachScratch,
    ) -> usize {
        match self {
            ReachIndex::Closure(c) => c.descendants(u).intersection_count(other),
            _ => {
                scratch.ensure(dag.node_count());
                let visited = &mut scratch.visited;
                let stack = &mut scratch.stack;
                visited.clear();
                stack.clear();
                visited.insert(u);
                stack.push(u);
                let mut count = usize::from(other.contains(u));
                while let Some(x) = stack.pop() {
                    for &c in dag.children(x) {
                        if visited.insert(c) {
                            count += usize::from(other.contains(c));
                            stack.push(c);
                        }
                    }
                }
                count
            }
        }
    }

    /// The frontier-repair primitive of the incremental rounded greedy
    /// (Alg. 7 made aggregate): given the `doomed` subgraph `D` of a *no*
    /// answer to query `q = doomed[0]` (collected by the caller as
    /// `alive ∩ G_q` in BFS order from `q`; every member still marked in
    /// `alive`), invokes `emit(p, w, c, absolute)` exactly once for every
    /// alive non-doomed ancestor `p` of `D`. With `absolute == false` the
    /// pair is the delta `(Σ_{d ∈ D ∩ G_p} w(d), |D ∩ G_p|)` the ancestor's
    /// alive-subgraph aggregates shrink by; with `absolute == true` it is
    /// the ancestor's **new** aggregate `(Σ_{v ∈ alive∖D ∩ G_p} w(v),
    /// |alive∖D ∩ G_p|)` outright. Both forms land the caller on the
    /// bit-identical post-repair state (`old = Σ_doomed + Σ_survivors` is an
    /// exact `u64` partition), so each ancestor class uses whichever side of
    /// the partition is cheaper to aggregate:
    ///
    /// * **ancestors of `q`** (the bulk, on taxonomy-shaped DAGs): `G_p ⊇
    ///   G_q ⊇ D`, so each receives the full doomed total in O(1) — and
    ///   since an ancestor of an ancestor of `q` is again an ancestor of
    ///   `q`, no other walk ever needs to enter that region (walks prune at
    ///   the mask losslessly);
    /// * remaining *partial* ancestors (reaching some of `D` around `q`
    ///   through shared descendants), closure tier: one word-level
    ///   row ∩ doomed-mask walk each (delta form);
    /// * partial ancestors, interval/BFS tiers: the paper's per-doomed-node
    ///   reverse walks folded into per-ancestor accumulators (delta form)
    ///   while `D` is the minority, or one survivor-side forward walk per
    ///   ancestor (absolute form) when `D` is the majority — the expensive
    ///   early-round kills aggregate what remains instead of what died.
    ///
    /// Either way the caller journals `O(|ancestors|)` entries, never one
    /// per (ancestor, doomed) pair, and ancestors are emitted in the same
    /// deterministic order under every backend (ancestors of `q` in
    /// reverse-DFS order from `q`, then partial ancestors in discovery
    /// order of one pruned multi-source reverse DFS from `D`).
    pub fn doomed_contributions(
        &self,
        dag: &Dag,
        doomed: &[NodeId],
        alive: &NodeBitSet,
        weight: &[u64],
        scratch: &mut ReachScratch,
        mut emit: impl FnMut(NodeId, u64, u32, bool),
    ) {
        let n = dag.node_count();
        scratch.ensure(n);
        debug_assert!(!doomed.is_empty(), "a no-answer dooms at least q");
        debug_assert!(doomed.iter().all(|&d| alive.contains(d)));
        let q = doomed[0];

        // Mark D and total it once.
        scratch.row.clear();
        let mut total_w = 0u64;
        for &d in doomed {
            scratch.row.insert(d);
            total_w += weight[d.index()];
        }
        let total_c = doomed.len() as u32;

        // Full-delta fast path: every ancestor of q contains all of D
        // (G_p ⊇ G_q ⊇ D). A proper ancestor of q is alive (a dead node's
        // descendants are all dead) and never doomed (that would make a
        // cycle). Emitted in reverse-DFS order from q; the mask also lets
        // every later walk prune — no ancestor of an ancestor of q can be
        // a partial ancestor.
        scratch.anc.clear();
        scratch.stack.clear();
        scratch.anc.insert(q);
        scratch.stack.push(q);
        while let Some(u) = scratch.stack.pop() {
            for &p in dag.parents(u) {
                if !scratch.anc.contains(p) {
                    debug_assert!(alive.contains(p) && !scratch.row.contains(p));
                    scratch.anc.insert(p);
                    emit(p, total_w, total_c, false);
                    scratch.stack.push(p);
                }
            }
        }

        // Partial ancestors: alive, non-doomed, reach some of D around q.
        // One multi-source reverse DFS from D over alive nodes, pruned at
        // the ancestors-of-q mask (lossless: no partial ancestor sits above
        // an ancestor of q).
        scratch.visited.clear();
        scratch.stack.clear();
        scratch.affected.clear();
        for &d in doomed {
            scratch.visited.insert(d);
            scratch.stack.push(d);
        }
        while let Some(u) = scratch.stack.pop() {
            for &p in dag.parents(u) {
                if alive.contains(p) && !scratch.anc.contains(p) && scratch.visited.insert(p) {
                    if !scratch.row.contains(p) {
                        scratch.affected.push(p);
                    }
                    scratch.stack.push(p);
                }
            }
        }
        if scratch.affected.is_empty() {
            return;
        }

        match self {
            ReachIndex::Closure(c) => {
                for i in 0..scratch.affected.len() {
                    let p = scratch.affected[i];
                    let (dw, dc) = c
                        .descendants(p)
                        .intersection_weight_count(&scratch.row, weight);
                    emit(p, dw, dc, false);
                }
            }
            _ if doomed.len() * 2 > alive.count() => {
                // Doomed majority: aggregate the survivor side. One forward
                // walk per partial ancestor over `alive ∖ D`, emitting the
                // new aggregates outright — fewer (ancestor, node) pairs
                // than walking the doomed side.
                for i in 0..scratch.affected.len() {
                    let p = scratch.affected[i];
                    scratch.visited.clear();
                    scratch.visited.insert(p);
                    scratch.stack.push(p);
                    let mut new_w = weight[p.index()];
                    let mut new_c = 1u32;
                    while let Some(u) = scratch.stack.pop() {
                        for &c in dag.children(u) {
                            if alive.contains(c)
                                && !scratch.row.contains(c)
                                && scratch.visited.insert(c)
                            {
                                new_w += weight[c.index()];
                                new_c += 1;
                                scratch.stack.push(c);
                            }
                        }
                    }
                    emit(p, new_w, new_c, true);
                }
            }
            _ => {
                // Doomed minority: per-doomed-node reverse walks (Alg. 7),
                // pruned at the ancestors-of-q mask and accumulated per
                // ancestor instead of emitted per pair.
                for &d in doomed {
                    let dw = weight[d.index()];
                    scratch.visited.clear();
                    scratch.visited.insert(d);
                    scratch.stack.push(d);
                    while let Some(u) = scratch.stack.pop() {
                        for &p in dag.parents(u) {
                            if alive.contains(p)
                                && !scratch.anc.contains(p)
                                && scratch.visited.insert(p)
                            {
                                if !scratch.row.contains(p) {
                                    scratch.acc_weight[p.index()] += dw;
                                    scratch.acc_count[p.index()] += 1;
                                }
                                scratch.stack.push(p);
                            }
                        }
                    }
                }
                for i in 0..scratch.affected.len() {
                    let p = scratch.affected[i];
                    let dw = std::mem::take(&mut scratch.acc_weight[p.index()]);
                    let dc = std::mem::take(&mut scratch.acc_count[p.index()]);
                    emit(p, dw, dc, false);
                }
            }
        }
    }

    /// `(Σ weight[v], |G_u|)` over the full descendant set `G_u` — the base
    /// aggregation of the rounded greedy (`w̃`/`ñ` of Alg. 6). `u64` sums
    /// are order-independent, so the closure row walk and the DFS produce
    /// bit-identical results.
    pub fn descendant_weight_count(
        &self,
        dag: &Dag,
        u: NodeId,
        weight: &[u64],
        scratch: &mut ReachScratch,
    ) -> (u64, u32) {
        match self {
            ReachIndex::Closure(c) => {
                let row = c.descendants(u);
                (row.weight_sum_u64(weight), row.count() as u32)
            }
            _ => {
                scratch.ensure(dag.node_count());
                let visited = &mut scratch.visited;
                let stack = &mut scratch.stack;
                visited.clear();
                stack.clear();
                visited.insert(u);
                stack.push(u);
                let mut wsum = weight[u.index()];
                let mut count = 1u32;
                while let Some(x) = stack.pop() {
                    for &c in dag.children(x) {
                        if visited.insert(c) {
                            wsum += weight[c.index()];
                            count += 1;
                            stack.push(c);
                        }
                    }
                }
                (wsum, count)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::dag_from_edges;
    use crate::generate::{random_dag, DagConfig};

    fn diamond() -> Dag {
        dag_from_edges(6, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (2, 5)]).unwrap()
    }

    fn backends(dag: &Dag) -> Vec<ReachIndex> {
        vec![
            ReachIndex::closure_for(dag),
            ReachIndex::interval_for(dag, 2, 11),
            ReachIndex::Bfs,
        ]
    }

    #[test]
    fn all_backends_agree_on_reaches() {
        let g = diamond();
        let mut scratch = ReachScratch::new(g.node_count());
        for index in backends(&g) {
            for u in g.nodes() {
                for v in g.nodes() {
                    let truth = g.reaches(u, v);
                    assert_eq!(
                        index.reaches(&g, u, v),
                        truth,
                        "{} ({u},{v})",
                        index.backend_name()
                    );
                    assert_eq!(
                        index.reaches_with(&g, u, v, &mut scratch),
                        truth,
                        "{} ({u},{v}) scratch",
                        index.backend_name()
                    );
                }
            }
        }
    }

    #[test]
    fn all_backends_produce_identical_rows() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let g = random_dag(&DagConfig::bushy(150, 0.2), &mut rng);
        let closure = ReachIndex::closure_for(&g);
        let mut closure_scratch = ReachScratch::new(g.node_count());
        let mut scratch = ReachScratch::new(g.node_count());
        for index in [ReachIndex::interval_for(&g, 3, 5), ReachIndex::Bfs] {
            for u in g.nodes() {
                let want = closure.descendants(&g, u, &mut closure_scratch).clone();
                let got = index.descendants(&g, u, &mut scratch);
                assert_eq!(&want, got, "{} row {u}", index.backend_name());
            }
        }
    }

    #[test]
    fn intersection_count_and_weights_match_rows() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        let g = random_dag(&DagConfig::bushy(120, 0.15), &mut rng);
        let n = g.node_count();
        let mut alive = NodeBitSet::full(n);
        for i in (0..n).step_by(3) {
            alive.remove(NodeId::new(i));
        }
        let weight: Vec<u64> = (0..n as u64).map(|i| i * 7 + 1).collect();
        let closure = ReachIndex::closure_for(&g);
        let mut s1 = ReachScratch::new(n);
        let mut s2 = ReachScratch::new(n);
        for index in [ReachIndex::interval_for(&g, 2, 1), ReachIndex::Bfs] {
            for u in g.nodes() {
                assert_eq!(
                    closure.intersection_count(&g, u, &alive, &mut s1),
                    index.intersection_count(&g, u, &alive, &mut s2),
                    "{} count {u}",
                    index.backend_name()
                );
                assert_eq!(
                    closure.descendant_weight_count(&g, u, &weight, &mut s1),
                    index.descendant_weight_count(&g, u, &weight, &mut s2),
                    "{} weight {u}",
                    index.backend_name()
                );
            }
        }
    }

    /// Applies `doomed_contributions` emissions to copies of the aggregates
    /// and returns the repaired `(wt, cnt)` plus the emission order.
    fn apply_contributions(
        index: &ReachIndex,
        dag: &Dag,
        doomed: &[NodeId],
        alive: &NodeBitSet,
        weight: &[u64],
        wt: &[u64],
        cnt: &[u32],
    ) -> (Vec<u64>, Vec<u32>, Vec<NodeId>) {
        let mut wt = wt.to_vec();
        let mut cnt = cnt.to_vec();
        let mut order = Vec::new();
        let mut scratch = ReachScratch::new(dag.node_count());
        index.doomed_contributions(
            dag,
            doomed,
            alive,
            weight,
            &mut scratch,
            |p, wv, cv, abs| {
                order.push(p);
                if abs {
                    wt[p.index()] = wv;
                    cnt[p.index()] = cv;
                } else {
                    wt[p.index()] -= wv;
                    cnt[p.index()] -= cv;
                }
            },
        );
        (wt, cnt, order)
    }

    #[test]
    fn doomed_contributions_identical_across_backends_and_strategies() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(21);
        let g = random_dag(&DagConfig::bushy(140, 0.2), &mut rng);
        let n = g.node_count();
        let weight: Vec<u64> = (0..n as u64).map(|i| i * 3 + 1).collect();
        let mut scratch = ReachScratch::new(n);

        // A realistic mid-search state: kill G_a, then doom G_b — covering
        // both the doomed-minority (per-node walks) and doomed-majority
        // (survivor-side recompute) strategies depending on |G_b|.
        for (a_raw, b_raw) in [(3usize, 9usize), (9, 1), (50, 2), (2, 51)] {
            let a = NodeId::new(a_raw % n);
            let b0 = NodeId::new(b_raw % n);
            let mut alive = NodeBitSet::full(n);
            for d in g.descendants(a) {
                alive.remove(d);
            }
            let b = if alive.contains(b0) { b0 } else { g.root() };
            // Current aggregates over the alive set (brute force).
            let mut wt = vec![0u64; n];
            let mut cnt = vec![0u32; n];
            for v in g.nodes() {
                if !alive.contains(v) {
                    continue;
                }
                for d in g.descendants(v) {
                    if alive.contains(NodeId::new(d.index())) {
                        wt[v.index()] += weight[d.index()];
                        cnt[v.index()] += 1;
                    }
                }
            }
            // Doomed set: alive ∩ G_b.
            let doomed: Vec<NodeId> = g
                .descendants(b)
                .into_iter()
                .filter(|&d| alive.contains(d))
                .collect();
            // Expected post-repair aggregates (brute force over survivors).
            let mut survivor = alive.clone();
            for &d in &doomed {
                survivor.remove(d);
            }
            let mut want_wt = wt.clone();
            let mut want_cnt = cnt.clone();
            for v in g.nodes() {
                if !survivor.contains(v) {
                    continue;
                }
                let mut nw = 0u64;
                let mut nc = 0u32;
                let row = ReachIndex::Bfs.descendants(&g, v, &mut scratch).clone();
                for d in row.iter() {
                    if survivor.contains(d) {
                        nw += weight[d.index()];
                        nc += 1;
                    }
                }
                want_wt[v.index()] = nw;
                want_cnt[v.index()] = nc;
            }

            let mut reference: Option<(Vec<u64>, Vec<u32>, Vec<NodeId>)> = None;
            for index in backends(&g) {
                let got = apply_contributions(&index, &g, &doomed, &alive, &weight, &wt, &cnt);
                // Repaired aggregates match brute force on every survivor.
                for v in g.nodes() {
                    if survivor.contains(v) {
                        assert_eq!(
                            got.0[v.index()],
                            want_wt[v.index()],
                            "{} wt {v}",
                            index.backend_name()
                        );
                        assert_eq!(
                            got.1[v.index()],
                            want_cnt[v.index()],
                            "{} cnt {v}",
                            index.backend_name()
                        );
                    }
                }
                // Emission order and per-ancestor touches identical across
                // backends (what keeps journals deterministic).
                match &reference {
                    None => reference = Some(got),
                    Some(want) => {
                        assert_eq!(want.2, got.2, "{} order", index.backend_name());
                        assert_eq!(want.0, got.0, "{} wt array", index.backend_name());
                        assert_eq!(want.1, got.1, "{} cnt array", index.backend_name());
                    }
                }
            }
        }
    }

    #[test]
    fn doomed_contributions_touches_exactly_the_alive_ancestors() {
        let g = diamond();
        let n = g.node_count();
        let weight = vec![1u64; n];
        let alive = NodeBitSet::full(n);
        let wt: Vec<u64> = g.nodes().map(|v| g.descendants(v).len() as u64).collect();
        let cnt: Vec<u32> = wt.iter().map(|&x| x as u32).collect();
        for index in backends(&g) {
            // Doom G_3 = {3, 4}: alive ancestors are {0, 1, 2}.
            let doomed = vec![NodeId::new(3), NodeId::new(4)];
            let (_, _, order) =
                apply_contributions(&index, &g, &doomed, &alive, &weight, &wt, &cnt);
            let mut touched: Vec<usize> = order.iter().map(|p| p.index()).collect();
            touched.sort_unstable();
            assert_eq!(touched, vec![0, 1, 2], "{}", index.backend_name());
        }
    }

    #[test]
    fn auto_picks_by_size() {
        let g = diamond();
        assert_eq!(ReachIndex::auto(&g).backend_name(), "closure");
        assert!(ReachIndex::auto(&g).as_closure().is_some());
        assert_eq!(ReachIndex::Bfs.memory_bytes(), 0);
        assert!(ReachIndex::closure_for(&g).memory_bytes() > 0);
    }

    #[test]
    fn scratch_resizes_across_graphs() {
        let small = diamond();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
        let big = random_dag(&DagConfig::bushy(200, 0.1), &mut rng);
        let mut scratch = ReachScratch::new(small.node_count());
        let index = ReachIndex::Bfs;
        assert!(index.reaches_with(&small, NodeId::new(0), NodeId::new(4), &mut scratch));
        // Same scratch, bigger graph: must transparently regrow.
        let root = big.root();
        let deep = NodeId::new(big.node_count() - 1);
        assert_eq!(
            index.reaches_with(&big, root, deep, &mut scratch),
            big.reaches(root, deep)
        );
        assert_eq!(scratch.universe(), big.node_count());
    }
}
