//! `ReachIndex` — the pluggable reachability backend behind DAG policies.
//!
//! The search policies need three reachability primitives over a [`Dag`]:
//! point queries `reach(u, v)`, the descendant row `G_u` as a bitset (the
//! candidate-set update of `FrameworkIGS`), and `|G_u ∩ S|` counts (heavy
//! chain extraction). Three backends cover the whole size spectrum:
//!
//! | backend | memory | `reach` | row / count |
//! |---|---|---|---|
//! | [`ReachClosure`] | n²/8 bytes | O(1) | O(n/64) row AND |
//! | [`IntervalIndex`] (GRAIL) | 2·k·4·n bytes | O(k) negative, pruned DFS positive | DFS over `G_u` |
//! | BFS (no index) | 0 | DFS | DFS over `G_u` |
//!
//! All three are **exact** — only the time/memory trade-off changes — so a
//! policy produces the *identical query transcript* under every backend
//! (the `u64` candidate words it derives are equal bit for bit; the
//! property-test suites assert this). The closure disqualifies itself
//! around 10⁵ nodes (~100 MB and growing quadratically), which is exactly
//! where the million-node scenarios live; [`ReachIndex::auto`] picks the
//! closure below [`AUTO_CLOSURE_MAX_NODES`] and the interval tier above.
//!
//! Set operations on the DFS backends need scratch buffers; callers hold a
//! [`ReachScratch`] (one per policy/session, reused across queries) so the
//! hot path stays allocation-free, matching the `StepJournal` discipline of
//! the policy layer.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::{Dag, IntervalIndex, NodeBitSet, NodeId, ReachClosure, VisitedSet};

/// Node-count threshold of [`ReachIndex::auto`]: at or below this size the
/// transitive closure is built (≤ n²/8 = 8 MiB of rows at the threshold),
/// above it the GRAIL interval index (O(k·n) memory) is used instead.
pub const AUTO_CLOSURE_MAX_NODES: usize = 8192;

/// Labelings `k` used by auto-built interval indexes: each extra labeling
/// refutes more negatives in O(1) at 8 bytes per node; 3 settles the vast
/// majority of non-reachable pairs on taxonomy-shaped DAGs.
pub const AUTO_INTERVAL_LABELINGS: usize = 3;

/// Seed for the randomised labelings of auto-built interval indexes, fixed
/// so that `auto` is deterministic for a given hierarchy.
const AUTO_INTERVAL_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// An exact reachability backend over a [`Dag`] (see the module docs for
/// the tier table). Policies receive one through
/// `SearchContext` and stay backend-agnostic; the closure variant is still
/// reachable via [`ReachIndex::as_closure`] for word-level fast paths.
#[derive(Debug, Clone)]
pub enum ReachIndex {
    /// Full transitive closure: O(1) queries, O(n/64) row ops, n²/8 bytes.
    Closure(ReachClosure),
    /// GRAIL interval labelings: O(k·n) memory, O(k) negative answers,
    /// pruned-DFS positives and set operations.
    Interval(IntervalIndex),
    /// No index at all: every operation traverses the graph.
    Bfs,
}

/// Reusable buffers for the DFS-based [`ReachIndex`] operations. One
/// instance per policy/session; every operation clears what it uses, so the
/// scratch carries no state between calls.
#[derive(Debug, Clone)]
pub struct ReachScratch {
    /// Descendant-row output (doubles as the DFS visited set when filling).
    row: NodeBitSet,
    /// Epoch-cleared visited set for counting traversals.
    visited: VisitedSet,
    /// DFS stack.
    stack: Vec<NodeId>,
}

impl ReachScratch {
    /// Scratch sized for a graph of `n` nodes.
    pub fn new(n: usize) -> Self {
        ReachScratch {
            row: NodeBitSet::empty(n),
            visited: VisitedSet::new(n),
            stack: Vec::new(),
        }
    }

    /// Number of node ids the buffers cover.
    pub fn universe(&self) -> usize {
        self.row.universe()
    }

    /// Re-sizes the buffers when the graph changed (no-op otherwise).
    fn ensure(&mut self, n: usize) {
        if self.row.universe() != n {
            self.row = NodeBitSet::empty(n);
            self.visited = VisitedSet::new(n);
        }
    }
}

impl ReachIndex {
    /// Auto-selects a backend for `dag`: transitive closure at or below
    /// [`AUTO_CLOSURE_MAX_NODES`] nodes, GRAIL interval index above (with
    /// [`AUTO_INTERVAL_LABELINGS`] labelings and a fixed seed, so the choice
    /// is deterministic).
    pub fn auto(dag: &Dag) -> Self {
        if dag.node_count() <= AUTO_CLOSURE_MAX_NODES {
            Self::closure_for(dag)
        } else {
            Self::interval_for(dag, AUTO_INTERVAL_LABELINGS, AUTO_INTERVAL_SEED)
        }
    }

    /// Builds the closure backend for `dag`.
    pub fn closure_for(dag: &Dag) -> Self {
        ReachIndex::Closure(ReachClosure::build(dag))
    }

    /// Builds the interval backend for `dag` with `k` labelings randomised
    /// from `seed`.
    pub fn interval_for(dag: &Dag, k: usize, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        ReachIndex::Interval(IntervalIndex::build(dag, k, &mut rng))
    }

    /// Stable backend identifier: `"closure"`, `"interval"` or `"bfs"`.
    pub fn backend_name(&self) -> &'static str {
        match self {
            ReachIndex::Closure(_) => "closure",
            ReachIndex::Interval(_) => "interval",
            ReachIndex::Bfs => "bfs",
        }
    }

    /// The closure rows, when this backend stores them — the O(n/64)
    /// word-level fast path some policies special-case.
    pub fn as_closure(&self) -> Option<&ReachClosure> {
        match self {
            ReachIndex::Closure(c) => Some(c),
            _ => None,
        }
    }

    /// Index memory in bytes (0 for the BFS backend).
    pub fn memory_bytes(&self) -> usize {
        match self {
            ReachIndex::Closure(c) => c.memory_bytes(),
            ReachIndex::Interval(i) => i.memory_bytes(),
            ReachIndex::Bfs => 0,
        }
    }

    /// Exact `reach(u, v)`. Convenience form that allocates DFS scratch for
    /// the non-closure backends; hot paths should use
    /// [`ReachIndex::reaches_with`].
    pub fn reaches(&self, dag: &Dag, u: NodeId, v: NodeId) -> bool {
        match self {
            ReachIndex::Closure(c) => c.reaches(u, v),
            _ => {
                let mut scratch = ReachScratch::new(dag.node_count());
                self.reaches_with(dag, u, v, &mut scratch)
            }
        }
    }

    /// Exact `reach(u, v)` using caller-held scratch (allocation-free once
    /// warm): O(1) on the closure, O(k) on interval-refuted negatives,
    /// (pruned) DFS otherwise.
    pub fn reaches_with(
        &self,
        dag: &Dag,
        u: NodeId,
        v: NodeId,
        scratch: &mut ReachScratch,
    ) -> bool {
        match self {
            ReachIndex::Closure(c) => c.reaches(u, v),
            ReachIndex::Interval(i) => {
                scratch.ensure(dag.node_count());
                i.reaches_with(dag, u, v, &mut scratch.visited, &mut scratch.stack)
            }
            ReachIndex::Bfs => {
                if u == v {
                    return true;
                }
                scratch.ensure(dag.node_count());
                scratch.visited.clear();
                scratch.stack.clear();
                scratch.visited.insert(u);
                scratch.stack.push(u);
                while let Some(x) = scratch.stack.pop() {
                    for &c in dag.children(x) {
                        if c == v {
                            return true;
                        }
                        if scratch.visited.insert(c) {
                            scratch.stack.push(c);
                        }
                    }
                }
                false
            }
        }
    }

    /// The descendant row `G_u` (original-graph descendants of `u`,
    /// including `u`) as a bitset: the closure hands out its stored row,
    /// the DFS backends fill `scratch` with one traversal. Either way the
    /// returned set is identical, which is what keeps word-granular
    /// candidate journaling bit-exact across backends.
    pub fn descendants<'s>(
        &'s self,
        dag: &Dag,
        u: NodeId,
        scratch: &'s mut ReachScratch,
    ) -> &'s NodeBitSet {
        match self {
            ReachIndex::Closure(c) => c.descendants(u),
            _ => {
                scratch.ensure(dag.node_count());
                let row = &mut scratch.row;
                let stack = &mut scratch.stack;
                row.clear();
                stack.clear();
                row.insert(u);
                stack.push(u);
                while let Some(x) = stack.pop() {
                    for &c in dag.children(x) {
                        if !row.contains(c) {
                            row.insert(c);
                            stack.push(c);
                        }
                    }
                }
                row
            }
        }
    }

    /// `|G_u ∩ other|` without materialising the intersection: an O(n/64)
    /// row AND on the closure, a counting DFS over `G_u` otherwise.
    pub fn intersection_count(
        &self,
        dag: &Dag,
        u: NodeId,
        other: &NodeBitSet,
        scratch: &mut ReachScratch,
    ) -> usize {
        match self {
            ReachIndex::Closure(c) => c.descendants(u).intersection_count(other),
            _ => {
                scratch.ensure(dag.node_count());
                let visited = &mut scratch.visited;
                let stack = &mut scratch.stack;
                visited.clear();
                stack.clear();
                visited.insert(u);
                stack.push(u);
                let mut count = usize::from(other.contains(u));
                while let Some(x) = stack.pop() {
                    for &c in dag.children(x) {
                        if visited.insert(c) {
                            count += usize::from(other.contains(c));
                            stack.push(c);
                        }
                    }
                }
                count
            }
        }
    }

    /// `(Σ weight[v], |G_u|)` over the full descendant set `G_u` — the base
    /// aggregation of the rounded greedy (`w̃`/`ñ` of Alg. 6). `u64` sums
    /// are order-independent, so the closure row walk and the DFS produce
    /// bit-identical results.
    pub fn descendant_weight_count(
        &self,
        dag: &Dag,
        u: NodeId,
        weight: &[u64],
        scratch: &mut ReachScratch,
    ) -> (u64, u32) {
        match self {
            ReachIndex::Closure(c) => {
                let row = c.descendants(u);
                (row.weight_sum_u64(weight), row.count() as u32)
            }
            _ => {
                scratch.ensure(dag.node_count());
                let visited = &mut scratch.visited;
                let stack = &mut scratch.stack;
                visited.clear();
                stack.clear();
                visited.insert(u);
                stack.push(u);
                let mut wsum = weight[u.index()];
                let mut count = 1u32;
                while let Some(x) = stack.pop() {
                    for &c in dag.children(x) {
                        if visited.insert(c) {
                            wsum += weight[c.index()];
                            count += 1;
                            stack.push(c);
                        }
                    }
                }
                (wsum, count)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::dag_from_edges;
    use crate::generate::{random_dag, DagConfig};

    fn diamond() -> Dag {
        dag_from_edges(6, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (2, 5)]).unwrap()
    }

    fn backends(dag: &Dag) -> Vec<ReachIndex> {
        vec![
            ReachIndex::closure_for(dag),
            ReachIndex::interval_for(dag, 2, 11),
            ReachIndex::Bfs,
        ]
    }

    #[test]
    fn all_backends_agree_on_reaches() {
        let g = diamond();
        let mut scratch = ReachScratch::new(g.node_count());
        for index in backends(&g) {
            for u in g.nodes() {
                for v in g.nodes() {
                    let truth = g.reaches(u, v);
                    assert_eq!(
                        index.reaches(&g, u, v),
                        truth,
                        "{} ({u},{v})",
                        index.backend_name()
                    );
                    assert_eq!(
                        index.reaches_with(&g, u, v, &mut scratch),
                        truth,
                        "{} ({u},{v}) scratch",
                        index.backend_name()
                    );
                }
            }
        }
    }

    #[test]
    fn all_backends_produce_identical_rows() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let g = random_dag(&DagConfig::bushy(150, 0.2), &mut rng);
        let closure = ReachIndex::closure_for(&g);
        let mut closure_scratch = ReachScratch::new(g.node_count());
        let mut scratch = ReachScratch::new(g.node_count());
        for index in [ReachIndex::interval_for(&g, 3, 5), ReachIndex::Bfs] {
            for u in g.nodes() {
                let want = closure.descendants(&g, u, &mut closure_scratch).clone();
                let got = index.descendants(&g, u, &mut scratch);
                assert_eq!(&want, got, "{} row {u}", index.backend_name());
            }
        }
    }

    #[test]
    fn intersection_count_and_weights_match_rows() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        let g = random_dag(&DagConfig::bushy(120, 0.15), &mut rng);
        let n = g.node_count();
        let mut alive = NodeBitSet::full(n);
        for i in (0..n).step_by(3) {
            alive.remove(NodeId::new(i));
        }
        let weight: Vec<u64> = (0..n as u64).map(|i| i * 7 + 1).collect();
        let closure = ReachIndex::closure_for(&g);
        let mut s1 = ReachScratch::new(n);
        let mut s2 = ReachScratch::new(n);
        for index in [ReachIndex::interval_for(&g, 2, 1), ReachIndex::Bfs] {
            for u in g.nodes() {
                assert_eq!(
                    closure.intersection_count(&g, u, &alive, &mut s1),
                    index.intersection_count(&g, u, &alive, &mut s2),
                    "{} count {u}",
                    index.backend_name()
                );
                assert_eq!(
                    closure.descendant_weight_count(&g, u, &weight, &mut s1),
                    index.descendant_weight_count(&g, u, &weight, &mut s2),
                    "{} weight {u}",
                    index.backend_name()
                );
            }
        }
    }

    #[test]
    fn auto_picks_by_size() {
        let g = diamond();
        assert_eq!(ReachIndex::auto(&g).backend_name(), "closure");
        assert!(ReachIndex::auto(&g).as_closure().is_some());
        assert_eq!(ReachIndex::Bfs.memory_bytes(), 0);
        assert!(ReachIndex::closure_for(&g).memory_bytes() > 0);
    }

    #[test]
    fn scratch_resizes_across_graphs() {
        let small = diamond();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
        let big = random_dag(&DagConfig::bushy(200, 0.1), &mut rng);
        let mut scratch = ReachScratch::new(small.node_count());
        let index = ReachIndex::Bfs;
        assert!(index.reaches_with(&small, NodeId::new(0), NodeId::new(4), &mut scratch));
        // Same scratch, bigger graph: must transparently regrow.
        let root = big.root();
        let deep = NodeId::new(big.node_count() - 1);
        assert_eq!(
            index.reaches_with(&big, root, deep, &mut scratch),
            big.reaches(root, deep)
        );
        assert_eq!(scratch.universe(), big.node_count());
    }
}
