//! Plain-text hierarchy exchange format.
//!
//! One self-describing format so generated datasets can be cached on disk
//! and inspected by hand:
//!
//! ```text
//! # comment lines start with '#'
//! node <id> <label>
//! edge <parent-id> <child-id>
//! ```
//!
//! Ids must be dense `0..n`. The format intentionally carries no
//! probabilities — weights travel separately, since one hierarchy is reused
//! under many distributions (Tables III–V all share a graph).

use std::io::{BufRead, Write};

use crate::{Dag, GraphError, HierarchyBuilder, NodeId};

/// Serialises `dag` into the text format.
pub fn write_hierarchy<W: Write>(dag: &Dag, out: &mut W) -> std::io::Result<()> {
    writeln!(
        out,
        "# aigs hierarchy v1: {} nodes, {} edges",
        dag.node_count(),
        dag.edge_count()
    )?;
    for u in dag.nodes() {
        writeln!(out, "node {} {}", u.index(), dag.label(u))?;
    }
    for u in dag.nodes() {
        for &c in dag.children(u) {
            writeln!(out, "edge {} {}", u.index(), c.index())?;
        }
    }
    Ok(())
}

/// Parses the text format back into a [`Dag`].
pub fn read_hierarchy<R: BufRead>(input: R) -> Result<Dag, GraphError> {
    let mut nodes: Vec<(usize, String)> = Vec::new();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let line = line.map_err(|e| GraphError::Parse {
            line: lineno + 1,
            message: e.to_string(),
        })?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, ' ');
        let kind = parts.next().unwrap_or("");
        match kind {
            "node" => {
                let id: usize =
                    parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| GraphError::Parse {
                            line: lineno + 1,
                            message: "expected `node <id> <label>`".into(),
                        })?;
                let label = parts.next().unwrap_or("").to_owned();
                nodes.push((id, label));
            }
            "edge" => {
                let p: usize =
                    parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| GraphError::Parse {
                            line: lineno + 1,
                            message: "expected `edge <parent> <child>`".into(),
                        })?;
                let c: usize = parts
                    .next()
                    .and_then(|s| s.trim().parse().ok())
                    .ok_or_else(|| GraphError::Parse {
                        line: lineno + 1,
                        message: "expected `edge <parent> <child>`".into(),
                    })?;
                edges.push((p, c));
            }
            other => {
                return Err(GraphError::Parse {
                    line: lineno + 1,
                    message: format!("unknown record kind {other:?}"),
                })
            }
        }
    }

    nodes.sort_by_key(|&(id, _)| id);
    for (expect, &(id, _)) in nodes.iter().enumerate() {
        if id != expect {
            return Err(GraphError::Parse {
                line: 0,
                message: format!("node ids must be dense 0..n; missing or duplicate id {expect}"),
            });
        }
    }

    let mut b = HierarchyBuilder::new();
    for (_, label) in nodes {
        b.add_node(label)?;
    }
    let n = b.node_count();
    for (p, c) in edges {
        if p >= n {
            return Err(GraphError::UnknownNode(NodeId::new(p)));
        }
        if c >= n {
            return Err(GraphError::UnknownNode(NodeId::new(c)));
        }
        b.add_edge(NodeId::new(p), NodeId::new(c))?;
    }
    b.build()
}

/// Renders the hierarchy in Graphviz DOT, optionally annotating each node
/// with a probability weight. For debugging and the examples.
pub fn to_dot(dag: &Dag, weights: Option<&[f64]>) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "digraph hierarchy {{");
    let _ = writeln!(s, "  rankdir=TB;");
    for u in dag.nodes() {
        match weights {
            Some(w) => {
                let _ = writeln!(
                    s,
                    "  n{} [label=\"{}\\np={:.3}\"];",
                    u.index(),
                    dag.label(u),
                    w[u.index()]
                );
            }
            None => {
                let _ = writeln!(s, "  n{} [label=\"{}\"];", u.index(), dag.label(u));
            }
        }
    }
    for u in dag.nodes() {
        for &c in dag.children(u) {
            let _ = writeln!(s, "  n{} -> n{};", u.index(), c.index());
        }
    }
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::dag_from_edges;
    use std::io::BufReader;

    #[test]
    fn roundtrip() {
        let g = dag_from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]).unwrap();
        let mut buf = Vec::new();
        write_hierarchy(&g, &mut buf).unwrap();
        let g2 = read_hierarchy(BufReader::new(&buf[..])).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn parse_rejects_garbage() {
        let err = read_hierarchy(BufReader::new("frob 1 2\n".as_bytes())).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn parse_rejects_sparse_ids() {
        let text = "node 0 a\nnode 2 b\n";
        let err = read_hierarchy(BufReader::new(text.as_bytes())).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }

    #[test]
    fn parse_rejects_bad_edge_endpoint() {
        let text = "node 0 a\nnode 1 b\nedge 0 1\nedge 0 7\n";
        let err = read_hierarchy(BufReader::new(text.as_bytes())).unwrap_err();
        assert!(matches!(err, GraphError::UnknownNode(_)));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# hello\n\nnode 0 root\nnode 1 kid\nedge 0 1\n";
        let g = read_hierarchy(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.label(NodeId::new(1)), "kid");
    }

    #[test]
    fn labels_may_contain_spaces() {
        let text = "node 0 digital cameras\nnode 1 point and shoot\nedge 0 1\n";
        let g = read_hierarchy(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(g.label(NodeId::new(0)), "digital cameras");
        assert_eq!(g.label(NodeId::new(1)), "point and shoot");
    }

    #[test]
    fn dot_contains_nodes_and_edges() {
        let g = dag_from_edges(3, &[(0, 1), (0, 2)]).unwrap();
        let dot = to_dot(&g, None);
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("digraph"));
        let w = vec![0.5, 0.25, 0.25];
        let dot_w = to_dot(&g, Some(&w));
        assert!(dot_w.contains("p=0.500"));
    }
}
