//! Incremental construction and validation of hierarchies.

use std::collections::HashMap;

use crate::{Dag, GraphError, NodeId};

/// How to treat inputs with several in-degree-0 nodes.
///
/// The paper (Section II): *"We assume that there is only one root in G. If
/// there are multiple roots, we can simply add a dummy node to G with an
/// outgoing edge to every original root."*
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MultiRootPolicy {
    /// Reject with [`GraphError::MultipleRoots`].
    #[default]
    Reject,
    /// Add a dummy root labelled `"__root__"` pointing at every original root.
    AddVirtualRoot,
}

/// Builder for [`Dag`] values.
///
/// Nodes are declared first (each gets a dense [`NodeId`]), then edges.
/// [`HierarchyBuilder::build`] verifies acyclicity (Kahn's algorithm), the
/// single-root property and edge sanity, and produces the CSR representation.
///
/// ```
/// use aigs_graph::HierarchyBuilder;
/// let mut b = HierarchyBuilder::new();
/// let root = b.add_node("vehicle").unwrap();
/// let car = b.add_node("car").unwrap();
/// b.add_edge(root, car).unwrap();
/// let dag = b.build().unwrap();
/// assert_eq!(dag.root(), root);
/// ```
#[derive(Debug, Default, Clone)]
pub struct HierarchyBuilder {
    labels: Vec<String>,
    label_index: HashMap<String, NodeId>,
    edges: Vec<(NodeId, NodeId)>,
    multi_root: MultiRootPolicy,
    dedup_edges: bool,
}

impl HierarchyBuilder {
    /// New empty builder rejecting multiple roots and keeping duplicate edges.
    pub fn new() -> Self {
        Self::default()
    }

    /// Configures the multiple-root policy.
    pub fn multi_root(mut self, policy: MultiRootPolicy) -> Self {
        self.multi_root = policy;
        self
    }

    /// Silently drops duplicate parallel edges instead of keeping them.
    /// Duplicate edges are harmless for reachability but skew degree
    /// statistics, so dataset loaders enable this.
    pub fn dedup_edges(mut self, yes: bool) -> Self {
        self.dedup_edges = yes;
        self
    }

    /// Number of nodes declared so far.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Declares a node with a unique label.
    pub fn add_node(&mut self, label: impl Into<String>) -> Result<NodeId, GraphError> {
        let label = label.into();
        if self.label_index.contains_key(&label) {
            return Err(GraphError::DuplicateLabel(label));
        }
        let id = NodeId::new(self.labels.len());
        self.label_index.insert(label.clone(), id);
        self.labels.push(label);
        Ok(id)
    }

    /// Returns the node with `label`, declaring it if unseen.
    /// Used by path-based loaders ("a/b/c" category paths).
    pub fn intern(&mut self, label: &str) -> NodeId {
        if let Some(&id) = self.label_index.get(label) {
            return id;
        }
        let id = NodeId::new(self.labels.len());
        self.label_index.insert(label.to_owned(), id);
        self.labels.push(label.to_owned());
        id
    }

    /// Adds the directed edge `parent -> child`.
    pub fn add_edge(&mut self, parent: NodeId, child: NodeId) -> Result<(), GraphError> {
        let n = self.labels.len();
        if parent.index() >= n {
            return Err(GraphError::UnknownNode(parent));
        }
        if child.index() >= n {
            return Err(GraphError::UnknownNode(child));
        }
        if parent == child {
            return Err(GraphError::SelfLoop(parent));
        }
        self.edges.push((parent, child));
        Ok(())
    }

    /// Adds a root-to-leaf category path, interning labels and edges as
    /// needed. This mirrors how the paper builds the Amazon hierarchy from
    /// the `categories` field of product records.
    pub fn add_path<I, S>(&mut self, path: I)
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut prev: Option<NodeId> = None;
        for seg in path {
            let id = self.intern(seg.as_ref());
            if let Some(p) = prev {
                if p != id {
                    self.edges.push((p, id));
                }
            }
            prev = Some(id);
        }
    }

    /// Validates and freezes the hierarchy.
    pub fn build(mut self) -> Result<Dag, GraphError> {
        if self.labels.is_empty() {
            return Err(GraphError::Empty);
        }
        if self.dedup_edges {
            // Order-preserving dedup: child-list order is semantically
            // meaningful (it is the presentation order TopDown/MIGS probe
            // in), so sorting here would silently bias those baselines.
            let mut seen = HashMap::with_capacity(self.edges.len());
            let mut kept = Vec::with_capacity(self.edges.len());
            for &e in &self.edges {
                if seen.insert(e, ()).is_none() {
                    kept.push(e);
                }
            }
            self.edges = kept;
        }

        let mut n = self.labels.len();
        let mut in_deg = vec![0u32; n];
        for &(_, c) in &self.edges {
            in_deg[c.index()] += 1;
        }
        let roots: Vec<NodeId> = (0..n)
            .filter(|&i| in_deg[i] == 0)
            .map(NodeId::new)
            .collect();
        let root = match (roots.len(), self.multi_root) {
            (0, _) => return Err(GraphError::NoRoot),
            (1, _) => roots[0],
            (_, MultiRootPolicy::Reject) => return Err(GraphError::MultipleRoots(roots)),
            (_, MultiRootPolicy::AddVirtualRoot) => {
                let dummy = NodeId::new(n);
                self.labels.push("__root__".to_owned());
                for r in roots {
                    self.edges.push((dummy, r));
                    in_deg[r.index()] += 1;
                }
                in_deg.push(0);
                n += 1;
                dummy
            }
        };

        // CSR for children.
        let mut child_off = vec![0u32; n + 1];
        for &(p, _) in &self.edges {
            child_off[p.index() + 1] += 1;
        }
        for i in 0..n {
            child_off[i + 1] += child_off[i];
        }
        let mut children = vec![NodeId::SENTINEL; self.edges.len()];
        let mut cursor = child_off.clone();
        for &(p, c) in &self.edges {
            let slot = cursor[p.index()];
            children[slot as usize] = c;
            cursor[p.index()] += 1;
        }

        // CSR for parents.
        let mut parent_off = vec![0u32; n + 1];
        for &(_, c) in &self.edges {
            parent_off[c.index() + 1] += 1;
        }
        for i in 0..n {
            parent_off[i + 1] += parent_off[i];
        }
        let mut parents = vec![NodeId::SENTINEL; self.edges.len()];
        let mut cursor = parent_off.clone();
        for &(p, c) in &self.edges {
            let slot = cursor[c.index()];
            parents[slot as usize] = p;
            cursor[c.index()] += 1;
        }
        // Canonicalise parent lists: unlike child order (the presentation
        // order policies probe in), parent order carries no meaning, and a
        // sorted form makes structural equality edge-insertion-order
        // independent (text round-trips compare equal).
        for i in 0..n {
            parents[parent_off[i] as usize..parent_off[i + 1] as usize].sort_unstable();
        }

        // Kahn's algorithm: topological order + cycle detection.
        let mut topo = Vec::with_capacity(n);
        let mut deg = in_deg.clone();
        let mut queue: std::collections::VecDeque<NodeId> =
            (0..n).filter(|&i| deg[i] == 0).map(NodeId::new).collect();
        while let Some(u) = queue.pop_front() {
            topo.push(u);
            let lo = child_off[u.index()] as usize;
            let hi = child_off[u.index() + 1] as usize;
            for &c in &children[lo..hi] {
                deg[c.index()] -= 1;
                if deg[c.index()] == 0 {
                    queue.push_back(c);
                }
            }
        }
        if topo.len() != n {
            // Some node never reached in-degree 0: it lies on a cycle.
            let culprit = (0..n)
                .find(|&i| deg[i] > 0)
                .map(NodeId::new)
                .unwrap_or(root);
            return Err(GraphError::CycleDetected(culprit));
        }

        let dag = Dag {
            child_off,
            children,
            parent_off,
            parents,
            labels: self.labels,
            root,
            topo,
        };
        debug_assert!(dag.validate().is_ok());
        Ok(dag)
    }
}

/// Convenience constructor: builds a hierarchy from `(parent, child)` index
/// pairs with auto-generated labels `"v{i}"`. Handy in tests and generators.
pub fn dag_from_edges(n: usize, edges: &[(u32, u32)]) -> Result<Dag, GraphError> {
    let mut b = HierarchyBuilder::new();
    for i in 0..n {
        b.add_node(format!("v{i}"))?;
    }
    for &(p, c) in edges {
        b.add_edge(NodeId(p), NodeId(c))?;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_cycle() {
        let err = dag_from_edges(3, &[(0, 1), (1, 2), (2, 1)]).unwrap_err();
        assert!(matches!(err, GraphError::CycleDetected(_)));
    }

    #[test]
    fn rejects_two_node_cycle_without_root() {
        let err = dag_from_edges(2, &[(0, 1), (1, 0)]).unwrap_err();
        assert_eq!(err, GraphError::NoRoot);
    }

    #[test]
    fn rejects_multiple_roots_by_default() {
        let err = dag_from_edges(3, &[(0, 2), (1, 2)]).unwrap_err();
        assert!(matches!(err, GraphError::MultipleRoots(_)));
    }

    #[test]
    fn virtual_root_policy_links_all_roots() {
        let mut b = HierarchyBuilder::new().multi_root(MultiRootPolicy::AddVirtualRoot);
        let a = b.add_node("a").unwrap();
        let c = b.add_node("c").unwrap();
        let x = b.add_node("x").unwrap();
        b.add_edge(a, x).unwrap();
        b.add_edge(c, x).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.label(g.root()), "__root__");
        assert_eq!(g.children(g.root()), &[a, c]);
        g.validate().unwrap();
    }

    #[test]
    fn rejects_self_loop_and_unknown() {
        let mut b = HierarchyBuilder::new();
        let a = b.add_node("a").unwrap();
        assert_eq!(b.add_edge(a, a).unwrap_err(), GraphError::SelfLoop(a));
        assert!(matches!(
            b.add_edge(a, NodeId::new(9)),
            Err(GraphError::UnknownNode(_))
        ));
    }

    #[test]
    fn rejects_duplicate_label() {
        let mut b = HierarchyBuilder::new();
        b.add_node("a").unwrap();
        assert!(matches!(
            b.add_node("a"),
            Err(GraphError::DuplicateLabel(_))
        ));
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(
            HierarchyBuilder::new().build().unwrap_err(),
            GraphError::Empty
        );
    }

    #[test]
    fn intern_reuses_ids() {
        let mut b = HierarchyBuilder::new();
        let a1 = b.intern("a");
        let a2 = b.intern("a");
        assert_eq!(a1, a2);
        assert_eq!(b.node_count(), 1);
    }

    #[test]
    fn add_path_builds_chain_and_shares_prefixes() {
        let mut b = HierarchyBuilder::new();
        b.add_path(["root", "electronics", "camera"]);
        b.add_path(["root", "electronics", "phone"]);
        b.add_path(["root", "books"]);
        let g = b.dedup_edges(true).build().unwrap();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 4);
        let e = g.node_by_label("electronics").unwrap();
        assert_eq!(g.out_degree(e), 2);
        assert!(g.is_tree());
    }

    #[test]
    fn dedup_edges_removes_parallel() {
        let g = {
            let mut b = HierarchyBuilder::new().dedup_edges(true);
            let a = b.add_node("a").unwrap();
            let x = b.add_node("x").unwrap();
            b.add_edge(a, x).unwrap();
            b.add_edge(a, x).unwrap();
            b.build().unwrap()
        };
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn single_node_graph() {
        let mut b = HierarchyBuilder::new();
        b.add_node("only").unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.root(), NodeId::new(0));
        assert!(g.is_tree());
        assert_eq!(g.height(), 0);
    }

    #[test]
    fn topo_order_respects_edges() {
        let g = dag_from_edges(6, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (1, 5)]).unwrap();
        let topo = g.topo_order();
        let pos: std::collections::HashMap<_, _> =
            topo.iter().enumerate().map(|(i, &u)| (u, i)).collect();
        for u in g.nodes() {
            for &c in g.children(u) {
                assert!(pos[&u] < pos[&c]);
            }
        }
    }
}
