//! Accelerated view for tree-shaped hierarchies.
//!
//! When the hierarchy is a tree (every non-root node has exactly one parent),
//! subtree membership reduces to an interval test on DFS entry/exit times,
//! which gives the O(1) `reach` oracle and the O(n) subtree-weight
//! initialisation used by `GreedyTree` (Alg. 4–5 of the paper).

use crate::{Dag, GraphError, NodeId};

/// Euler-tour view over a tree-shaped [`Dag`].
#[derive(Debug, Clone)]
pub struct Tree<'a> {
    dag: &'a Dag,
    parent: Vec<NodeId>,
    depth: Vec<u32>,
    /// DFS entry time of each node.
    tin: Vec<u32>,
    /// DFS exit time; subtree(u) == nodes v with tin[u] <= tin[v] < tout[u].
    tout: Vec<u32>,
    /// Subtree sizes |T_u| of the full (un-pruned) tree.
    size: Vec<u32>,
    /// Nodes in DFS pre-order (also a topological order of the tree).
    preorder: Vec<NodeId>,
}

impl<'a> Tree<'a> {
    /// Builds the view. Fails with [`GraphError::MultipleRoots`] carrying the
    /// offending node when some non-root node has more than one parent
    /// (i.e. the hierarchy is a proper DAG, not a tree).
    pub fn new(dag: &'a Dag) -> Result<Self, GraphError> {
        for u in dag.nodes() {
            if u != dag.root() && dag.in_degree(u) != 1 {
                // A DAG node with >1 parent: not a tree.
                return Err(GraphError::MultipleRoots(vec![u]));
            }
        }
        let n = dag.node_count();
        let mut parent = vec![NodeId::SENTINEL; n];
        let mut depth = vec![0u32; n];
        let mut tin = vec![0u32; n];
        let mut tout = vec![0u32; n];
        let mut size = vec![1u32; n];
        let mut preorder = Vec::with_capacity(n);

        let mut clock = 0u32;
        // Iterative DFS with explicit enter/exit to fill Euler times.
        let mut stack: Vec<(NodeId, usize)> = vec![(dag.root(), 0)];
        tin[dag.root().index()] = clock;
        clock += 1;
        preorder.push(dag.root());
        while let Some(&mut (u, ref mut ci)) = stack.last_mut() {
            let kids = dag.children(u);
            if *ci < kids.len() {
                let c = kids[*ci];
                *ci += 1;
                parent[c.index()] = u;
                depth[c.index()] = depth[u.index()] + 1;
                tin[c.index()] = clock;
                clock += 1;
                preorder.push(c);
                stack.push((c, 0));
            } else {
                tout[u.index()] = clock;
                stack.pop();
                if let Some(&(p, _)) = stack.last() {
                    size[p.index()] += size[u.index()];
                }
            }
        }
        debug_assert_eq!(clock as usize, n, "tree DFS must reach every node");
        Ok(Tree {
            dag,
            parent,
            depth,
            tin,
            tout,
            size,
            preorder,
        })
    }

    /// The underlying DAG.
    #[inline]
    pub fn dag(&self) -> &'a Dag {
        self.dag
    }

    /// Parent of `u`, or the sentinel for the root.
    #[inline]
    pub fn parent(&self, u: NodeId) -> NodeId {
        self.parent[u.index()]
    }

    /// Depth of `u` (root has depth 0).
    #[inline]
    pub fn depth(&self, u: NodeId) -> u32 {
        self.depth[u.index()]
    }

    /// Size of the full subtree `|T_u|`.
    #[inline]
    pub fn subtree_size(&self, u: NodeId) -> u32 {
        self.size[u.index()]
    }

    /// O(1) test: is `v` inside the subtree rooted at `u` (inclusive)?
    /// Exactly the oracle predicate `reach(u)` for target `v` on a tree.
    #[inline]
    pub fn in_subtree(&self, u: NodeId, v: NodeId) -> bool {
        self.tin[u.index()] <= self.tin[v.index()] && self.tin[v.index()] < self.tout[u.index()]
    }

    /// Nodes in DFS pre-order.
    #[inline]
    pub fn preorder(&self) -> &[NodeId] {
        &self.preorder
    }

    /// The raw Euler interval arrays `(tin, tout)`:
    /// `subtree(u) = { v : tin[u] <= tin[v] < tout[u] }`.
    #[inline]
    pub fn euler_intervals(&self) -> (&[u32], &[u32]) {
        (&self.tin, &self.tout)
    }

    /// Consumes the view, yielding owned `(tin, tout)` arrays — the shared
    /// answer index used by exhaustive evaluation (one DFS for thousands of
    /// per-target oracles).
    pub fn into_intervals(self) -> (Vec<u32>, Vec<u32>) {
        (self.tin, self.tout)
    }

    /// Walks up from `u` to the root, yielding `u` first.
    pub fn path_to_root(&self, u: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let mut cur = u;
        let mut done = false;
        std::iter::from_fn(move || {
            if done {
                return None;
            }
            let out = cur;
            let p = self.parent[cur.index()];
            if p.is_sentinel() {
                done = true;
            } else {
                cur = p;
            }
            Some(out)
        })
    }

    /// Aggregates an arbitrary per-node weight into per-subtree totals in a
    /// single reverse pre-order pass (the `SetWeightDFS` of Alg. 5, run
    /// bottom-up without recursion).
    pub fn subtree_weights(&self, node_weight: &[f64]) -> Vec<f64> {
        assert_eq!(node_weight.len(), self.dag.node_count());
        let mut acc = node_weight.to_vec();
        for &u in self.preorder.iter().rev() {
            let p = self.parent[u.index()];
            if !p.is_sentinel() {
                acc[p.index()] += acc[u.index()];
            }
        }
        acc
    }

    /// Integer-weight variant of [`Tree::subtree_weights`], used with the
    /// rounded weights of Eq. (1).
    pub fn subtree_weights_u64(&self, node_weight: &[u64]) -> Vec<u64> {
        assert_eq!(node_weight.len(), self.dag.node_count());
        let mut acc = node_weight.to_vec();
        for &u in self.preorder.iter().rev() {
            let p = self.parent[u.index()];
            if !p.is_sentinel() {
                acc[p.index()] += acc[u.index()];
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::dag_from_edges;

    fn sample() -> Dag {
        // Fig. 2(a): 0 -> 1; 1 -> {2, 3, 4}; 3 -> {5, 6}
        dag_from_edges(7, &[(0, 1), (1, 2), (1, 3), (1, 4), (3, 5), (3, 6)]).unwrap()
    }

    #[test]
    fn rejects_non_tree() {
        let g = dag_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        assert!(Tree::new(&g).is_err());
    }

    #[test]
    fn parent_depth_size() {
        let g = sample();
        let t = Tree::new(&g).unwrap();
        assert!(t.parent(NodeId::new(0)).is_sentinel());
        assert_eq!(t.parent(NodeId::new(5)), NodeId::new(3));
        assert_eq!(t.depth(NodeId::new(0)), 0);
        assert_eq!(t.depth(NodeId::new(6)), 3);
        assert_eq!(t.subtree_size(NodeId::new(0)), 7);
        assert_eq!(t.subtree_size(NodeId::new(1)), 6);
        assert_eq!(t.subtree_size(NodeId::new(3)), 3);
        assert_eq!(t.subtree_size(NodeId::new(6)), 1);
    }

    #[test]
    fn in_subtree_matches_bfs_reachability() {
        let g = sample();
        let t = Tree::new(&g).unwrap();
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(t.in_subtree(u, v), g.reaches(u, v), "({u},{v})");
            }
        }
    }

    #[test]
    fn path_to_root_walks_ancestry() {
        let g = sample();
        let t = Tree::new(&g).unwrap();
        let path: Vec<usize> = t.path_to_root(NodeId::new(6)).map(|u| u.index()).collect();
        assert_eq!(path, vec![6, 3, 1, 0]);
        let path: Vec<usize> = t.path_to_root(NodeId::new(0)).map(|u| u.index()).collect();
        assert_eq!(path, vec![0]);
    }

    #[test]
    fn preorder_starts_at_root_and_covers_all() {
        let g = sample();
        let t = Tree::new(&g).unwrap();
        assert_eq!(t.preorder()[0], g.root());
        let mut seen = t.preorder().to_vec();
        seen.sort();
        assert_eq!(seen.len(), 7);
    }

    #[test]
    fn subtree_weights_sum_children() {
        let g = sample();
        let t = Tree::new(&g).unwrap();
        let w = vec![1.0; 7];
        let acc = t.subtree_weights(&w);
        for u in g.nodes() {
            assert_eq!(acc[u.index()], t.subtree_size(u) as f64);
        }
        let wu: Vec<u64> = vec![2; 7];
        let accu = t.subtree_weights_u64(&wu);
        assert_eq!(accu[0], 14);
        assert_eq!(accu[3], 6);
    }

    #[test]
    fn weighted_subtree_nonuniform() {
        let g = sample();
        let t = Tree::new(&g).unwrap();
        let mut w = vec![0.0; 7];
        w[5] = 0.4; // maxima
        w[6] = 0.4; // sentra
        w[3] = 0.08;
        let acc = t.subtree_weights(&w);
        assert!((acc[3] - 0.88).abs() < 1e-12);
        assert!((acc[1] - 0.88).abs() < 1e-12);
        assert!((acc[0] - 0.88).abs() < 1e-12);
    }

    #[test]
    fn single_node_tree() {
        let g = dag_from_edges(1, &[]).unwrap();
        let t = Tree::new(&g).unwrap();
        assert_eq!(t.subtree_size(NodeId::new(0)), 1);
        assert!(t.in_subtree(NodeId::new(0), NodeId::new(0)));
    }
}
