//! # aigs-graph — hierarchy substrate for interactive graph search
//!
//! This crate provides the graph-side machinery shared by every algorithm in
//! the AIGS reproduction (Cong et al., *Cost-Effective Algorithms for
//! Average-Case Interactive Graph Search*, ICDE 2022):
//!
//! * [`Dag`] — the immutable single-rooted hierarchy (CSR in both directions),
//!   built and validated by [`HierarchyBuilder`].
//! * [`Tree`] — Euler-tour view for tree-shaped hierarchies: O(1) subtree
//!   membership, subtree sizes and weights (Alg. 5 `SetWeightDFS`).
//! * [`heavy_path`] — weighted heavy paths (Definition 10, Theorem 5).
//! * [`CandidateSet`] — alive-set bookkeeping with LIFO undo, implementing
//!   the candidate updates of `FrameworkIGS` (Alg. 1).
//! * [`reach`] — reachability indexes: per-target [`AncestorSet`]s and the
//!   transitive-closure bitsets ([`ReachClosure`]) used by DAG policies;
//!   [`IntervalIndex`] is the O(k·n)-memory GRAIL-style tier for DAGs too
//!   large for the quadratic closure.
//! * [`ReachIndex`] — the pluggable backend (closure / interval / plain
//!   BFS) behind those tiers, with a uniform `reaches` / descendant-row /
//!   candidate-restrict surface and an [`ReachIndex::auto`] size policy.
//! * [`generate`] — seeded random trees/DAGs and fixed shapes (path, star,
//!   complete k-ary) for tests and benchmarks.
//! * [`io`] — a plain-text exchange format plus Graphviz export.
//!
//! The crate is `no_std`-adjacent in spirit (no I/O besides [`io`], no
//! threads, no interior mutability) and deterministic end to end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod candidate;
mod dag;
mod error;
pub mod generate;
pub mod heavy_path;
mod id;
pub mod interval_index;
pub mod io;
pub mod reach;
pub mod reach_index;
pub mod traversal;
mod tree;

pub use builder::{dag_from_edges, HierarchyBuilder, MultiRootPolicy};
pub use candidate::CandidateSet;
pub use dag::{Dag, DagStats};
pub use error::GraphError;
pub use heavy_path::{heavy_path_from, HeavyPathDecomposition};
pub use id::NodeId;
pub use interval_index::IntervalIndex;
pub use reach::{AncestorSet, NodeBitSet, ReachClosure};
pub use reach_index::{ReachIndex, ReachScratch, AUTO_CLOSURE_MAX_NODES};
pub use traversal::{BfsScratch, VisitedSet};
pub use tree::Tree;
