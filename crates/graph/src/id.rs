//! Compact node identifiers.
//!
//! Hierarchies in interactive graph search are bounded by crowd-scale
//! taxonomies (tens of thousands of categories), so nodes are addressed with
//! `u32` indices into contiguous arrays rather than pointers or hash keys.

use std::fmt;

/// Identifier of a node inside a [`crate::Dag`].
///
/// A `NodeId` is an index into the owning graph's node arrays. Ids are dense:
/// a graph with `n` nodes uses exactly the ids `0..n`. Ids are only meaningful
/// relative to the graph that produced them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct NodeId(pub u32);

impl NodeId {
    /// Largest representable id, used as a sentinel for "no node".
    pub const SENTINEL: NodeId = NodeId(u32::MAX);

    /// Creates an id from a `usize` index.
    ///
    /// # Panics
    /// Panics if `index` does not fit in `u32`, which would mean a hierarchy
    /// of more than 4 billion categories.
    #[inline]
    pub fn new(index: usize) -> Self {
        debug_assert!(index < u32::MAX as usize, "node index overflows u32");
        NodeId(index as u32)
    }

    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// True when this id is the "no node" sentinel.
    #[inline]
    pub fn is_sentinel(self) -> bool {
        self == Self::SENTINEL
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_sentinel() {
            write!(f, "n⊥")
        } else {
            write!(f, "n{}", self.0)
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u32 {
    #[inline]
    fn from(v: NodeId) -> Self {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_usize() {
        let id = NodeId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(u32::from(id), 42);
        assert_eq!(NodeId::from(42u32), id);
    }

    #[test]
    fn sentinel_is_detectable() {
        assert!(NodeId::SENTINEL.is_sentinel());
        assert!(!NodeId::new(0).is_sentinel());
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(NodeId::new(2) < NodeId::SENTINEL);
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", NodeId::new(7)), "n7");
        assert_eq!(format!("{}", NodeId::SENTINEL), "n⊥");
    }
}
