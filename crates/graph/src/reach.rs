//! Reachability indexes.
//!
//! Three tiers, chosen by cost profile:
//!
//! 1. [`crate::Tree::in_subtree`] — O(1) on trees via Euler intervals.
//! 2. [`AncestorSet`] — per-target reverse BFS; O(n + m) once per search
//!    session, then O(1) per oracle query. This is what simulated oracles use.
//! 3. [`ReachClosure`] — full transitive closure as bitset rows (u64 blocks),
//!    O(n·m/64) to build and n²/8 bytes of memory; gives O(n/64)
//!    candidate-set intersections for DAG policies (WIGS on DAGs) and O(1)
//!    reachability tests.

use crate::{Dag, NodeId};

/// The ancestor set of a fixed target node: answers `reach(q)` for that
/// target in O(1).
#[derive(Debug, Clone)]
pub struct AncestorSet {
    target: NodeId,
    is_ancestor: Vec<bool>,
}

impl AncestorSet {
    /// Builds the ancestor set of `target` with one reverse BFS.
    pub fn new(dag: &Dag, target: NodeId) -> Self {
        let mut is_ancestor = vec![false; dag.node_count()];
        let mut stack = vec![target];
        is_ancestor[target.index()] = true;
        while let Some(u) = stack.pop() {
            for &p in dag.parents(u) {
                if !is_ancestor[p.index()] {
                    is_ancestor[p.index()] = true;
                    stack.push(p);
                }
            }
        }
        AncestorSet {
            target,
            is_ancestor,
        }
    }

    /// The target this set was built for.
    #[inline]
    pub fn target(&self) -> NodeId {
        self.target
    }

    /// `reach(q)`: true iff the target is reachable from `q`.
    #[inline]
    pub fn reach(&self, q: NodeId) -> bool {
        self.is_ancestor[q.index()]
    }
}

/// Number of `u64` blocks needed for `n` bits.
#[inline]
fn blocks_for(n: usize) -> usize {
    n.div_ceil(64)
}

/// A fixed-width bitset over node ids, the row type of [`ReachClosure`] and
/// the candidate-set representation used by DAG policies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeBitSet {
    bits: Vec<u64>,
    n: usize,
}

impl NodeBitSet {
    /// Empty set over `n` ids.
    pub fn empty(n: usize) -> Self {
        NodeBitSet {
            bits: vec![0; blocks_for(n)],
            n,
        }
    }

    /// Full set over `n` ids.
    pub fn full(n: usize) -> Self {
        let mut s = Self::empty(n);
        s.fill();
        s
    }

    /// Resets to the empty set without reallocating.
    pub fn clear(&mut self) {
        self.bits.fill(0);
    }

    /// Resets to the full set without reallocating.
    pub fn fill(&mut self) {
        let n = self.n;
        self.bits.fill(u64::MAX);
        if !n.is_multiple_of(64) {
            if let Some(last) = self.bits.last_mut() {
                *last = (1u64 << (n % 64)) - 1;
            }
        }
    }

    /// Number of ids the set ranges over.
    #[inline]
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Inserts `u`.
    #[inline]
    pub fn insert(&mut self, u: NodeId) {
        self.bits[u.index() >> 6] |= 1u64 << (u.index() & 63);
    }

    /// Removes `u`.
    #[inline]
    pub fn remove(&mut self, u: NodeId) {
        self.bits[u.index() >> 6] &= !(1u64 << (u.index() & 63));
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, u: NodeId) -> bool {
        (self.bits[u.index() >> 6] >> (u.index() & 63)) & 1 == 1
    }

    /// Number of members.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Number of `u64` blocks backing the set.
    #[inline]
    pub fn word_count(&self) -> usize {
        self.bits.len()
    }

    /// The `i`-th block.
    #[inline]
    pub fn word(&self, i: usize) -> u64 {
        self.bits[i]
    }

    /// Overwrites the `i`-th block, returning its previous value — the
    /// word-granular write used by delta-undo journals: policies record
    /// `(i, old)` pairs instead of cloning the whole set.
    #[inline]
    pub fn set_word(&mut self, i: usize, word: u64) -> u64 {
        std::mem::replace(&mut self.bits[i], word)
    }

    /// Writes a previously journalled block back (inverse of
    /// [`NodeBitSet::set_word`]).
    #[inline]
    pub fn restore_word(&mut self, i: usize, word: u64) {
        self.bits[i] = word;
    }

    /// `self ∩= other`.
    pub fn intersect_with(&mut self, other: &NodeBitSet) {
        debug_assert_eq!(self.n, other.n);
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a &= *b;
        }
    }

    /// `self ∖= other`.
    pub fn subtract(&mut self, other: &NodeBitSet) {
        debug_assert_eq!(self.n, other.n);
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a &= !*b;
        }
    }

    /// `self ∪= other`.
    pub fn union_with(&mut self, other: &NodeBitSet) {
        debug_assert_eq!(self.n, other.n);
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= *b;
        }
    }

    /// |self ∩ other| without materialising the intersection.
    pub fn intersection_count(&self, other: &NodeBitSet) -> usize {
        debug_assert_eq!(self.n, other.n);
        self.bits
            .iter()
            .zip(&other.bits)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Σ `weight[u]` over `u ∈ self ∩ other`. Weights are the rounded integer
    /// weights of Eq. (1).
    pub fn intersection_weight_u64(&self, other: &NodeBitSet, weight: &[u64]) -> u64 {
        debug_assert_eq!(self.n, other.n);
        let mut total = 0u64;
        for (block, (a, b)) in self.bits.iter().zip(&other.bits).enumerate() {
            let mut word = a & b;
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                total += weight[(block << 6) | bit];
                word &= word - 1;
            }
        }
        total
    }

    /// `(Σ weight[u], |self ∩ other|)` over `u ∈ self ∩ other` in one word
    /// walk — the fused form of [`NodeBitSet::intersection_weight_u64`] and
    /// [`NodeBitSet::intersection_count`] used by the incremental greedy-DAG
    /// frontier repair, where both aggregates are needed per ancestor.
    pub fn intersection_weight_count(&self, other: &NodeBitSet, weight: &[u64]) -> (u64, u32) {
        debug_assert_eq!(self.n, other.n);
        let mut total = 0u64;
        let mut count = 0u32;
        for (block, (a, b)) in self.bits.iter().zip(&other.bits).enumerate() {
            let mut word = a & b;
            count += word.count_ones();
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                total += weight[(block << 6) | bit];
                word &= word - 1;
            }
        }
        (total, count)
    }

    /// Σ `weight[u]` over all members `u`. Weights are the rounded integer
    /// weights of Eq. (1); `u64` addition is exactly commutative, so the
    /// result is independent of iteration order (unlike an `f64` sum).
    pub fn weight_sum_u64(&self, weight: &[u64]) -> u64 {
        self.iter().map(|u| weight[u.index()]).sum()
    }

    /// Iterates over members in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.bits.iter().enumerate().flat_map(|(block, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(NodeId::new((block << 6) | bit))
            })
        })
    }

    /// The single member, if exactly one remains. Used for search
    /// termination: the candidate set collapsed to the target.
    pub fn sole_member(&self) -> Option<NodeId> {
        let mut found: Option<NodeId> = None;
        for (block, &word) in self.bits.iter().enumerate() {
            if word == 0 {
                continue;
            }
            if word.count_ones() > 1 || found.is_some() {
                return None;
            }
            found = Some(NodeId::new((block << 6) | word.trailing_zeros() as usize));
        }
        found
    }
}

/// Full transitive closure of a [`Dag`] stored as one bitset row per node:
/// row `u` holds exactly `G_u`, the descendant set of `u` (including `u`).
#[derive(Debug, Clone)]
pub struct ReachClosure {
    rows: Vec<NodeBitSet>,
}

impl ReachClosure {
    /// Builds the closure in reverse topological order:
    /// `row(u) = {u} ∪ ⋃_{c ∈ children(u)} row(c)`.
    pub fn build(dag: &Dag) -> Self {
        let n = dag.node_count();
        let mut rows: Vec<NodeBitSet> = (0..n).map(|_| NodeBitSet::empty(n)).collect();
        for &u in dag.topo_order().iter().rev() {
            // Split borrow: children rows are strictly later in topo order
            // but not in id order, so collect via unions on a scratch row.
            let mut row = std::mem::replace(&mut rows[u.index()], NodeBitSet::empty(0));
            row.insert(u);
            for &c in dag.children(u) {
                row.union_with(&rows[c.index()]);
            }
            rows[u.index()] = row;
        }
        ReachClosure { rows }
    }

    /// The descendant bitset `G_u`.
    #[inline]
    pub fn descendants(&self, u: NodeId) -> &NodeBitSet {
        &self.rows[u.index()]
    }

    /// `reach(q)` for target `z`: O(1).
    #[inline]
    pub fn reaches(&self, q: NodeId, z: NodeId) -> bool {
        self.rows[q.index()].contains(z)
    }

    /// Memory footprint in bytes (rows only), to let callers decide whether
    /// a closure is affordable for their `n`.
    pub fn memory_bytes(&self) -> usize {
        self.rows
            .iter()
            .map(|r| r.bits.len() * std::mem::size_of::<u64>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::dag_from_edges;

    fn diamond() -> Dag {
        dag_from_edges(6, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (2, 5)]).unwrap()
    }

    #[test]
    fn ancestor_set_matches_bfs() {
        let g = diamond();
        for z in g.nodes() {
            let a = AncestorSet::new(&g, z);
            assert_eq!(a.target(), z);
            for q in g.nodes() {
                assert_eq!(a.reach(q), g.reaches(q, z), "reach({q}) target {z}");
            }
        }
    }

    #[test]
    fn closure_matches_bfs() {
        let g = diamond();
        let c = ReachClosure::build(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(c.reaches(u, v), g.reaches(u, v), "({u},{v})");
            }
            assert_eq!(c.descendants(u).count(), g.descendants(u).len());
        }
        assert!(c.memory_bytes() > 0);
    }

    #[test]
    fn bitset_basic_ops() {
        let mut s = NodeBitSet::empty(130);
        assert_eq!(s.universe(), 130);
        s.insert(NodeId::new(0));
        s.insert(NodeId::new(64));
        s.insert(NodeId::new(129));
        assert_eq!(s.count(), 3);
        assert!(s.contains(NodeId::new(64)));
        s.remove(NodeId::new(64));
        assert!(!s.contains(NodeId::new(64)));
        assert_eq!(s.count(), 2);
        let members: Vec<usize> = s.iter().map(|u| u.index()).collect();
        assert_eq!(members, vec![0, 129]);
    }

    #[test]
    fn bitset_algebra() {
        let mut a = NodeBitSet::empty(70);
        let mut b = NodeBitSet::empty(70);
        for i in [0usize, 3, 65] {
            a.insert(NodeId::new(i));
        }
        for i in [3usize, 65, 69] {
            b.insert(NodeId::new(i));
        }
        assert_eq!(a.intersection_count(&b), 2);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.count(), 2);
        let mut d = a.clone();
        d.subtract(&b);
        let members: Vec<usize> = d.iter().map(|u| u.index()).collect();
        assert_eq!(members, vec![0]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.count(), 4);
    }

    #[test]
    fn bitset_weighted_intersection() {
        let mut a = NodeBitSet::empty(5);
        let mut b = NodeBitSet::empty(5);
        a.insert(NodeId::new(1));
        a.insert(NodeId::new(2));
        b.insert(NodeId::new(2));
        b.insert(NodeId::new(4));
        let w = vec![10u64, 20, 30, 40, 50];
        assert_eq!(a.intersection_weight_u64(&b, &w), 30);
        assert_eq!(a.intersection_weight_count(&b, &w), (30, 1));
        b.insert(NodeId::new(1));
        assert_eq!(a.intersection_weight_count(&b, &w), (50, 2));
    }

    #[test]
    fn sole_member_detection() {
        let mut s = NodeBitSet::empty(200);
        assert_eq!(s.sole_member(), None);
        s.insert(NodeId::new(150));
        assert_eq!(s.sole_member(), Some(NodeId::new(150)));
        s.insert(NodeId::new(3));
        assert_eq!(s.sole_member(), None);
    }

    #[test]
    fn full_set() {
        let s = NodeBitSet::full(67);
        assert_eq!(s.count(), 67);
        assert!(s.contains(NodeId::new(66)));
    }
}
