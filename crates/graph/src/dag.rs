//! The immutable hierarchy type used by every search policy.
//!
//! A [`Dag`] is a single-rooted directed acyclic graph stored in compressed
//! sparse row (CSR) form, in both edge directions. All policy code is written
//! against this type; trees are the special case recognised by
//! [`Dag::is_tree`] and given an accelerated view by [`crate::Tree`].

use crate::{GraphError, NodeId};

/// A single-rooted directed acyclic category hierarchy.
///
/// Construction goes through [`crate::HierarchyBuilder`], which validates
/// acyclicity and rootedness. Node ids are dense (`0..n`), and the root is
/// guaranteed to reach every node? — **no**: the paper only requires a single
/// root (a unique node of in-degree 0); disconnected descendants cannot exist
/// because every non-root node has a parent and parents chain up acyclically
/// to the root. Hence the root reaches every node, which the builder asserts.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Dag {
    /// CSR offsets into `children`; length `n + 1`.
    pub(crate) child_off: Vec<u32>,
    /// Concatenated child lists, in insertion order.
    pub(crate) children: Vec<NodeId>,
    /// CSR offsets into `parents`; length `n + 1`.
    pub(crate) parent_off: Vec<u32>,
    /// Concatenated parent lists.
    pub(crate) parents: Vec<NodeId>,
    /// Human-readable node labels (category names).
    pub(crate) labels: Vec<String>,
    /// The unique node with in-degree 0.
    pub(crate) root: NodeId,
    /// A topological order of all nodes (parents before children).
    pub(crate) topo: Vec<NodeId>,
}

impl Dag {
    /// Number of nodes `n`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges `m`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.children.len()
    }

    /// The unique root node.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Iterator over all node ids `0..n`.
    #[inline]
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// The children of `u`, in insertion order.
    #[inline]
    pub fn children(&self, u: NodeId) -> &[NodeId] {
        let i = u.index();
        &self.children[self.child_off[i] as usize..self.child_off[i + 1] as usize]
    }

    /// The parents of `u`.
    #[inline]
    pub fn parents(&self, u: NodeId) -> &[NodeId] {
        let i = u.index();
        &self.parents[self.parent_off[i] as usize..self.parent_off[i + 1] as usize]
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.children(u).len()
    }

    /// In-degree of `u`.
    #[inline]
    pub fn in_degree(&self, u: NodeId) -> usize {
        self.parents(u).len()
    }

    /// True when `u` has no children.
    #[inline]
    pub fn is_leaf(&self, u: NodeId) -> bool {
        self.out_degree(u) == 0
    }

    /// The label of `u`.
    #[inline]
    pub fn label(&self, u: NodeId) -> &str {
        &self.labels[u.index()]
    }

    /// All labels, indexed by node id.
    #[inline]
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Finds a node by exact label. Linear scan; intended for tests,
    /// examples and small fixtures, not hot paths.
    pub fn node_by_label(&self, label: &str) -> Option<NodeId> {
        self.labels.iter().position(|l| l == label).map(NodeId::new)
    }

    /// A topological order (every parent precedes its children).
    #[inline]
    pub fn topo_order(&self) -> &[NodeId] {
        &self.topo
    }

    /// True when every non-root node has exactly one parent.
    pub fn is_tree(&self) -> bool {
        self.nodes()
            .all(|u| u == self.root || self.in_degree(u) == 1)
    }

    /// Depth of every node: length of the *longest* path from the root.
    ///
    /// On trees this is the unique root distance. On DAGs the longest path is
    /// the convention used by the paper's "Height" column (Table II) and by
    /// the per-depth running-time experiment (Fig. 6).
    pub fn depths(&self) -> Vec<u32> {
        let mut depth = vec![0u32; self.node_count()];
        for &u in &self.topo {
            for &c in self.children(u) {
                depth[c.index()] = depth[c.index()].max(depth[u.index()] + 1);
            }
        }
        depth
    }

    /// Height: the maximum depth over all nodes (length of the longest
    /// root-to-node path, in edges).
    pub fn height(&self) -> u32 {
        self.depths().into_iter().max().unwrap_or(0)
    }

    /// Maximum out-degree over all nodes.
    pub fn max_out_degree(&self) -> usize {
        self.nodes().map(|u| self.out_degree(u)).max().unwrap_or(0)
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.nodes().filter(|&u| self.is_leaf(u)).count()
    }

    /// Collects the descendant set `G_u` (including `u`) with a BFS.
    ///
    /// This is the subgraph the paper writes `G_u`; a fresh allocation per
    /// call, so use [`crate::traversal`] primitives with a reusable
    /// [`crate::VisitedSet`] in hot paths.
    pub fn descendants(&self, u: NodeId) -> Vec<NodeId> {
        let mut seen = vec![false; self.node_count()];
        let mut queue = std::collections::VecDeque::new();
        let mut out = Vec::new();
        seen[u.index()] = true;
        queue.push_back(u);
        while let Some(v) = queue.pop_front() {
            out.push(v);
            for &c in self.children(v) {
                if !seen[c.index()] {
                    seen[c.index()] = true;
                    queue.push_back(c);
                }
            }
        }
        out
    }

    /// Collects the ancestor set of `u` (including `u`) with a reverse BFS.
    pub fn ancestors(&self, u: NodeId) -> Vec<NodeId> {
        let mut seen = vec![false; self.node_count()];
        let mut queue = std::collections::VecDeque::new();
        let mut out = Vec::new();
        seen[u.index()] = true;
        queue.push_back(u);
        while let Some(v) = queue.pop_front() {
            out.push(v);
            for &p in self.parents(v) {
                if !seen[p.index()] {
                    seen[p.index()] = true;
                    queue.push_back(p);
                }
            }
        }
        out
    }

    /// True when `target` is reachable from `q` (the oracle predicate
    /// `reach(q)` of the paper). O(n + m) BFS; prefer a
    /// [`crate::ReachClosure`] or per-session ancestor sets in hot paths.
    pub fn reaches(&self, q: NodeId, target: NodeId) -> bool {
        if q == target {
            return true;
        }
        let mut seen = vec![false; self.node_count()];
        let mut stack = vec![q];
        seen[q.index()] = true;
        while let Some(v) = stack.pop() {
            for &c in self.children(v) {
                if c == target {
                    return true;
                }
                if !seen[c.index()] {
                    seen[c.index()] = true;
                    stack.push(c);
                }
            }
        }
        false
    }

    /// Histogram of out-degrees: entry `d` counts nodes with `d` children
    /// (index capped at `cap`, larger degrees accumulate in the last slot).
    pub fn out_degree_histogram(&self, cap: usize) -> Vec<usize> {
        let mut hist = vec![0usize; cap + 1];
        for u in self.nodes() {
            hist[self.out_degree(u).min(cap)] += 1;
        }
        hist
    }

    /// Histogram of node depths (longest-path convention, like
    /// [`Dag::depths`]).
    pub fn depth_histogram(&self) -> Vec<usize> {
        let depths = self.depths();
        let mut hist = vec![0usize; self.height() as usize + 1];
        for d in depths {
            hist[d as usize] += 1;
        }
        hist
    }

    /// Mean depth over leaves — how deep the "specific" categories sit,
    /// a key driver of search cost.
    pub fn mean_leaf_depth(&self) -> f64 {
        let depths = self.depths();
        let mut total = 0u64;
        let mut leaves = 0u64;
        for u in self.nodes() {
            if self.is_leaf(u) {
                total += depths[u.index()] as u64;
                leaves += 1;
            }
        }
        if leaves == 0 {
            0.0
        } else {
            total as f64 / leaves as f64
        }
    }

    /// Summary statistics in the shape of the paper's Table II.
    pub fn stats(&self) -> DagStats {
        DagStats {
            nodes: self.node_count(),
            edges: self.edge_count(),
            height: self.height(),
            max_out_degree: self.max_out_degree(),
            leaves: self.leaf_count(),
            is_tree: self.is_tree(),
        }
    }

    /// Internal consistency check used by tests and `debug_assert`s:
    /// CSR arrays well-formed, parent/child lists mirror each other,
    /// topo order valid, single root.
    pub fn validate(&self) -> Result<(), GraphError> {
        let n = self.node_count();
        if n == 0 {
            return Err(GraphError::Empty);
        }
        if self.root.index() >= n {
            return Err(GraphError::UnknownNode(self.root));
        }
        // The root must be the unique zero-in-degree node.
        let mut roots = Vec::new();
        for u in self.nodes() {
            if self.in_degree(u) == 0 {
                roots.push(u);
            }
        }
        if roots.is_empty() {
            return Err(GraphError::NoRoot);
        }
        if roots.len() > 1 {
            return Err(GraphError::MultipleRoots(roots));
        }
        if roots[0] != self.root {
            return Err(GraphError::UnknownNode(self.root));
        }
        // Topological order covers all nodes and respects edges.
        if self.topo.len() != n {
            return Err(GraphError::CycleDetected(self.root));
        }
        let mut pos = vec![u32::MAX; n];
        for (i, &u) in self.topo.iter().enumerate() {
            pos[u.index()] = i as u32;
        }
        for u in self.nodes() {
            for &c in self.children(u) {
                if pos[u.index()] >= pos[c.index()] {
                    return Err(GraphError::CycleDetected(c));
                }
            }
        }
        Ok(())
    }
}

/// Dataset statistics, mirroring Table II of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DagStats {
    /// Number of nodes `n`.
    pub nodes: usize,
    /// Number of edges `m`.
    pub edges: usize,
    /// Longest root-to-node path length, in edges.
    pub height: u32,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Number of leaves.
    pub leaves: usize,
    /// Whether the hierarchy is a tree.
    pub is_tree: bool,
}

impl std::fmt::Display for DagStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} m={} height={} max_deg={} leaves={} type={}",
            self.nodes,
            self.edges,
            self.height,
            self.max_out_degree,
            self.leaves,
            if self.is_tree { "Tree" } else { "DAG" }
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::HierarchyBuilder;
    use crate::NodeId;

    /// The vehicle hierarchy of Fig. 1 / Fig. 2(a):
    /// 1 Vehicle → 2 Car; 2 → {3 Honda, 4 Nissan, 5 Mercedes}; 4 → {6, 7}.
    /// (0-based ids here.)
    fn vehicle() -> crate::Dag {
        let mut b = HierarchyBuilder::new();
        let v: Vec<NodeId> = [
            "vehicle", "car", "honda", "nissan", "mercedes", "maxima", "sentra",
        ]
        .iter()
        .map(|l| b.add_node(*l).unwrap())
        .collect();
        b.add_edge(v[0], v[1]).unwrap();
        b.add_edge(v[1], v[2]).unwrap();
        b.add_edge(v[1], v[3]).unwrap();
        b.add_edge(v[1], v[4]).unwrap();
        b.add_edge(v[3], v[5]).unwrap();
        b.add_edge(v[3], v[6]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn basic_topology() {
        let g = vehicle();
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.root(), NodeId::new(0));
        assert!(g.is_tree());
        assert_eq!(g.height(), 3);
        assert_eq!(g.max_out_degree(), 3);
        assert_eq!(g.leaf_count(), 4);
        assert_eq!(g.children(NodeId::new(1)).len(), 3);
        assert_eq!(g.parents(NodeId::new(5)), &[NodeId::new(3)]);
        g.validate().unwrap();
    }

    #[test]
    fn descendants_and_ancestors() {
        let g = vehicle();
        let mut d = g.descendants(NodeId::new(3));
        d.sort();
        assert_eq!(d, vec![NodeId::new(3), NodeId::new(5), NodeId::new(6)]);
        let mut a = g.ancestors(NodeId::new(6));
        a.sort();
        assert_eq!(
            a,
            vec![
                NodeId::new(0),
                NodeId::new(1),
                NodeId::new(3),
                NodeId::new(6)
            ]
        );
    }

    #[test]
    fn reaches_matches_descendants() {
        let g = vehicle();
        for u in g.nodes() {
            let desc = g.descendants(u);
            for v in g.nodes() {
                assert_eq!(g.reaches(u, v), desc.contains(&v), "reach({u},{v})");
            }
        }
    }

    #[test]
    fn label_lookup() {
        let g = vehicle();
        assert_eq!(g.node_by_label("sentra"), Some(NodeId::new(6)));
        assert_eq!(g.node_by_label("bicycle"), None);
        assert_eq!(g.label(NodeId::new(2)), "honda");
    }

    #[test]
    fn depths_on_tree() {
        let g = vehicle();
        let d = g.depths();
        assert_eq!(d, vec![0, 1, 2, 2, 2, 3, 3]);
    }

    #[test]
    fn structural_profiles() {
        let g = vehicle();
        // Degrees: 0×4 (leaves), 1×1 (root), 2×1 (nissan), 3×1 (car).
        let hist = g.out_degree_histogram(5);
        assert_eq!(&hist[..4], &[4, 1, 1, 1]);
        // Capping folds the tail into the last slot.
        let capped = g.out_degree_histogram(1);
        assert_eq!(capped, vec![4, 3]);
        // Depths: 1 root, 1 at depth 1, 3 at depth 2, 2 at depth 3.
        assert_eq!(g.depth_histogram(), vec![1, 1, 3, 2]);
        // Leaves: honda(2), mercedes(2), maxima(3), sentra(3) -> mean 2.5.
        assert!((g.mean_leaf_depth() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn stats_display() {
        let g = vehicle();
        let s = g.stats();
        assert_eq!(s.nodes, 7);
        assert!(s.is_tree);
        let text = s.to_string();
        assert!(text.contains("n=7") && text.contains("Tree"));
    }

    #[test]
    fn dag_multi_parent_not_tree() {
        let mut b = HierarchyBuilder::new();
        let a = b.add_node("a").unwrap();
        let x = b.add_node("x").unwrap();
        let y = b.add_node("y").unwrap();
        let z = b.add_node("z").unwrap();
        b.add_edge(a, x).unwrap();
        b.add_edge(a, y).unwrap();
        b.add_edge(x, z).unwrap();
        b.add_edge(y, z).unwrap();
        let g = b.build().unwrap();
        assert!(!g.is_tree());
        assert_eq!(g.in_degree(z), 2);
        // Longest-path depth of z is 2.
        assert_eq!(g.depths()[z.index()], 2);
        g.validate().unwrap();
    }
}
