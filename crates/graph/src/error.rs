//! Typed errors for hierarchy construction and validation.

use std::error::Error;
use std::fmt;

use crate::NodeId;

/// Errors raised while building or validating a hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The edge set contains a directed cycle, so the input is not a DAG.
    /// Carries one node that participates in a cycle.
    CycleDetected(NodeId),
    /// The graph has no root (every node has an incoming edge), which can
    /// only happen together with a cycle, or the graph is empty.
    NoRoot,
    /// The graph has several roots and the builder was configured to reject
    /// that instead of adding a virtual root. Carries the roots found.
    MultipleRoots(Vec<NodeId>),
    /// An edge endpoint referenced a node that was never declared.
    UnknownNode(NodeId),
    /// A self-loop `u -> u` was supplied.
    SelfLoop(NodeId),
    /// The same label was registered twice with [`crate::HierarchyBuilder::add_node`].
    DuplicateLabel(String),
    /// The graph is empty.
    Empty,
    /// A parse error from the text hierarchy format.
    Parse {
        /// 1-based line number (0 for whole-file errors).
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::CycleDetected(n) => {
                write!(f, "hierarchy contains a directed cycle through {n}")
            }
            GraphError::NoRoot => write!(f, "hierarchy has no root node"),
            GraphError::MultipleRoots(roots) => {
                write!(f, "hierarchy has {} roots: ", roots.len())?;
                for (i, r) in roots.iter().take(8).enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{r}")?;
                }
                if roots.len() > 8 {
                    write!(f, ", …")?;
                }
                Ok(())
            }
            GraphError::UnknownNode(n) => write!(f, "edge references unknown node {n}"),
            GraphError::SelfLoop(n) => write!(f, "self-loop on node {n}"),
            GraphError::DuplicateLabel(l) => write!(f, "duplicate node label {l:?}"),
            GraphError::Empty => write!(f, "hierarchy is empty"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GraphError::CycleDetected(NodeId::new(3));
        assert!(e.to_string().contains("cycle"));
        assert!(e.to_string().contains("n3"));

        let e = GraphError::MultipleRoots(vec![NodeId::new(0), NodeId::new(5)]);
        let s = e.to_string();
        assert!(s.contains("2 roots"));
        assert!(s.contains("n0") && s.contains("n5"));

        let e = GraphError::Parse {
            line: 12,
            message: "bad edge".into(),
        };
        assert!(e.to_string().contains("line 12"));
    }

    #[test]
    fn multiple_roots_display_truncates() {
        let roots: Vec<NodeId> = (0..20).map(NodeId::new).collect();
        let s = GraphError::MultipleRoots(roots).to_string();
        assert!(s.contains("…"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error> = Box::new(GraphError::Empty);
        assert_eq!(e.to_string(), "hierarchy is empty");
    }
}
