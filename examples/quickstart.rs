//! Quickstart: interactive categorisation on the paper's Fig. 1 hierarchy.
//!
//! Recreates the opening example of the paper: labelling a vehicle image by
//! asking reachability questions, first with the naive `TopDown` strategy,
//! then with the average-case greedy policy, and finally comparing exact
//! expected costs (Example 2's 2.60-vs-2.04 story).
//!
//! ```text
//! cargo run --example quickstart
//! ```

use aigs::core::policy::{GreedyTreePolicy, TopDownPolicy, WigsPolicy};
use aigs::core::{
    evaluate_exhaustive, run_session, DecisionTreeBuilder, Policy, SearchContext, TargetOracle,
    TranscriptOracle,
};
use aigs::data::fixtures::vehicle;
use aigs::graph::NodeId;

fn transcript_of(
    policy: &mut dyn Policy,
    ctx: &SearchContext<'_>,
    target: NodeId,
) -> (Vec<(String, bool)>, u32) {
    let mut oracle = TranscriptOracle::new(TargetOracle::new(ctx.dag, target));
    let outcome = run_session(policy, ctx, &mut oracle, None).expect("session converges");
    assert_eq!(outcome.target, target);
    let qa = oracle
        .transcript
        .iter()
        .map(|&(q, a)| (ctx.dag.label(q).to_owned(), a))
        .collect();
    (qa, outcome.queries)
}

fn main() {
    let (dag, weights) = vehicle();
    let ctx = SearchContext::new(&dag, &weights);
    let sentra = dag.node_by_label("sentra").expect("fixture label");

    println!("The Fig. 1 vehicle hierarchy ({} nodes):", dag.node_count());
    let tree = aigs::graph::Tree::new(&dag).expect("fixture is a tree");
    for &v in tree.preorder() {
        let indent = "  ".repeat(tree.depth(v) as usize);
        println!("  {indent}{} (p = {:.2})", dag.label(v), weights.get(v));
    }

    println!("\n--- Labelling a Sentra image with TopDown ---");
    let mut top_down = TopDownPolicy::new();
    let (qa, queries) = transcript_of(&mut top_down, &ctx, sentra);
    for (q, a) in &qa {
        println!("  is it a {q}? -> {}", if *a { "yes" } else { "no" });
    }
    println!("  identified after {queries} questions");

    println!("\n--- Same image with the greedy policy (GreedyTree) ---");
    let mut greedy = GreedyTreePolicy::new();
    let (qa, queries) = transcript_of(&mut greedy, &ctx, sentra);
    for (q, a) in &qa {
        println!("  is it a {q}? -> {}", if *a { "yes" } else { "no" });
    }
    println!("  identified after {queries} questions");

    println!("\n--- Example 2: expected cost over the 100-image batch ---");
    let mut wigs = WigsPolicy::new();
    let greedy_report = evaluate_exhaustive(&mut greedy, &ctx).expect("sound policy");
    let wigs_report = evaluate_exhaustive(&mut wigs, &ctx).expect("sound policy");
    println!(
        "  WIGS (worst-case oriented): expected {:.2} queries/image, worst case {}",
        wigs_report.expected_cost, wigs_report.max_cost
    );
    println!(
        "  Greedy (average-case):      expected {:.2} queries/image, worst case {}",
        greedy_report.expected_cost, greedy_report.max_cost
    );
    println!(
        "  -> for 100 images: {:.0} vs {:.0} total questions",
        100.0 * wigs_report.expected_cost,
        100.0 * greedy_report.expected_cost
    );

    println!("\n--- The greedy policy as a decision tree (Graphviz) ---");
    let dt = DecisionTreeBuilder::new()
        .build(&mut greedy, &ctx)
        .expect("decision tree builds");
    println!("{}", dt.to_dot(Some(&dag)));
}
