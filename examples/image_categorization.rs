//! Image categorisation on a WordNet-style concept DAG (the paper's
//! ImageNet scenario), with the distribution learned on the fly.
//!
//! In practice nobody hands you the true image distribution: the paper's
//! Fig. 4 shows the greedy policy converging to offline performance as the
//! empirical estimate sharpens. This example replays a labelling stream
//! and prints the cost trajectory.
//!
//! ```text
//! cargo run --release --example image_categorization
//! ```

use aigs::core::policy::{GreedyDagPolicy, WigsPolicy};
use aigs::core::{evaluate_exhaustive, run_online_trace, SearchContext};
use aigs::data::{imagenet_like, object_trace, Scale};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let dataset = imagenet_like(Scale::Small, 99);
    println!("ImageNet-like concept DAG: {}", dataset.dag.stats());
    let multi_parent = dataset
        .dag
        .nodes()
        .filter(|&u| dataset.dag.in_degree(u) > 1)
        .count();
    println!("Concepts with multiple hypernyms: {multi_parent}\n");

    // Offline references under the true distribution.
    let weights = dataset.empirical_weights();
    let ctx = SearchContext::new(&dataset.dag, &weights);
    let mut offline_greedy = GreedyDagPolicy::new();
    let offline = evaluate_exhaustive(&mut offline_greedy, &ctx).expect("sound policy");
    let mut wigs = WigsPolicy::new();
    let wigs_report = evaluate_exhaustive(&mut wigs, &ctx).expect("sound policy");

    // Online run: the policy starts from the uniform prior and learns the
    // distribution from each labelled image.
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let trace = object_trace(&dataset.object_counts, 20_000, &mut rng);
    let mut online_greedy = GreedyDagPolicy::new();
    let points = run_online_trace(&dataset.dag, &trace, &mut online_greedy, 2_000, 1)
        .expect("online run converges");

    println!("Average questions per image (window of 2,000 images):");
    println!(
        "  {:>8}  {:>14}  {:>15}  {:>6}",
        "#images", "online greedy", "offline greedy", "WIGS"
    );
    for p in &points {
        println!(
            "  {:>8}  {:>14.2}  {:>15.2}  {:>6.2}",
            p.objects, p.avg_cost, offline.expected_cost, wigs_report.expected_cost
        );
    }

    let first = points.first().expect("non-empty trace").avg_cost;
    let last = points.last().expect("non-empty trace").avg_cost;
    println!(
        "\nOnline cost fell from {first:.2} to {last:.2} questions/image as the \
         empirical distribution converged (offline bound: {:.2}).",
        offline.expected_cost
    );
}
