//! Batched search (Section III-E): trading total questions for fewer
//! crowd round-trips.
//!
//! Crowdsourcing platforms answer a batch of k posted questions in one
//! round-trip, so wall-clock latency is driven by *rounds*, not questions.
//! This example sweeps k on an Amazon-like tree and prints the
//! rounds-vs-questions frontier.
//!
//! ```text
//! cargo run --release --example batched_search
//! ```

use aigs::core::{BatchedTreeSearch, SearchContext, TargetOracle};
use aigs::data::{amazon_like, sample_targets, Scale};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let dataset = amazon_like(Scale::Small, 11);
    let weights = dataset.empirical_weights();
    let ctx = SearchContext::new(&dataset.dag, &weights);
    println!("Amazon-like taxonomy: {}\n", dataset.dag.stats());

    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let targets = sample_targets(&weights, 2_000, &mut rng);

    println!(
        "  {:>3}  {:>12}  {:>14}  {:>12}",
        "k", "avg rounds", "avg questions", "worst rounds"
    );
    for k in [1usize, 2, 3, 5, 8] {
        let search = BatchedTreeSearch::new(k);
        let mut rounds_total = 0u64;
        let mut queries_total = 0u64;
        let mut worst_rounds = 0u32;
        for &z in &targets {
            let mut oracle = TargetOracle::new(&dataset.dag, z);
            let out = search.run(&ctx, &mut oracle).expect("tree search");
            assert_eq!(out.target, z);
            rounds_total += out.rounds as u64;
            queries_total += out.queries as u64;
            worst_rounds = worst_rounds.max(out.rounds);
        }
        let n = targets.len() as f64;
        println!(
            "  {k:>3}  {:>12.2}  {:>14.2}  {:>12}",
            rounds_total as f64 / n,
            queries_total as f64 / n,
            worst_rounds
        );
    }

    println!("\nLarger batches cut interaction rounds (crowd latency) while the");
    println!("total question count — the monetary cost — rises only moderately.");
}
