//! A tour of the order-theoretic machinery behind the hardness results
//! (Lemmas 1–3 of the paper).
//!
//! Interactive graph search *is* search in a partially ordered set, which
//! *is* the binary decision tree problem — this example walks the vehicle
//! hierarchy through both reductions and back, and shows the exact optimal
//! decision tree the NP-hardness says we cannot find at scale.
//!
//! ```text
//! cargo run --example poset_tour
//! ```

use aigs::core::policy::{optimal_expected_cost, optimal_worst_case_cost};
use aigs::core::SearchContext;
use aigs::data::fixtures::vehicle;
use aigs::poset::{reduce_aigs_to_decision_table, Poset};

fn main() {
    let (dag, weights) = vehicle();
    println!("Fig. 1 hierarchy: {}", dag.stats());

    // Lemma 2, forward: reachability is a partial order.
    let poset = Poset::from_dag(&dag);
    poset
        .check_axioms()
        .expect("reachability satisfies reflexivity, antisymmetry, transitivity");
    println!(
        "\nLemma 2: reachability forms a valid partial order over {} elements.",
        poset.len()
    );
    println!(
        "  e.g. sentra ≤ nissan: {}   nissan ≤ sentra: {}",
        poset.leq(6, 3),
        poset.leq(3, 6)
    );

    // Lemma 2, backward: the Hasse diagram reconstructs the hierarchy.
    let hasse = poset.hasse_diagram().expect("valid poset");
    let faithful = dag.nodes().all(|a| {
        dag.nodes()
            .all(|b| hasse.reaches(a, b) == dag.reaches(a, b))
    });
    println!(
        "  Hasse diagram rebuilt with {} nodes; reachability preserved: {faithful}",
        hasse.node_count()
    );

    // Lemma 3: the decision-table reduction.
    let table = reduce_aigs_to_decision_table(&dag, weights.as_slice());
    println!(
        "\nLemma 3: reduced to a {}x{} boolean decision table (separable: {}).",
        table.objects,
        table.attributes,
        table.is_separable()
    );
    println!("  attribute matrix (rows = objects, cols = reach tests):");
    for i in 0..table.objects {
        print!("    {} ", dag.label(aigs::graph::NodeId::new(i)));
        for _ in dag.label(aigs::graph::NodeId::new(i)).len()..9 {
            print!(" ");
        }
        for j in 0..table.attributes {
            print!("{}", if table.test(i, j) { '1' } else { '0' });
        }
        println!();
    }

    // What NP-hardness forbids at scale, exact DP delivers at n = 7.
    let ctx = SearchContext::new(&dag, &weights);
    let opt_avg = optimal_expected_cost(&ctx).expect("tiny instance");
    let opt_worst = optimal_worst_case_cost(&ctx).expect("tiny instance");
    println!(
        "\nExact optima (NP-hard in general, Lemma 1): expected {opt_avg:.4} queries, \
         worst case {opt_worst:.0} queries."
    );
    println!("The paper's greedy achieves 2.04 — the optimum here — in O(nhd) time.");
}
