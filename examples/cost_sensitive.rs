//! Cost-sensitive search (CAIGS, Section III-D): when hard questions cost
//! more than easy ones, the best query is not the best *split*.
//!
//! Reproduces Example 4 / Fig. 3 exactly, then sweeps the price of the
//! expensive node to show the policy switching strategies at the break-even
//! point.
//!
//! ```text
//! cargo run --example cost_sensitive
//! ```

use aigs::core::policy::{CostSensitivePolicy, GreedyNaivePolicy};
use aigs::core::{evaluate_exhaustive, QueryCosts, SearchContext};
use aigs::data::fixtures::caigs_chain;

fn main() {
    let (dag, weights, costs) = caigs_chain();
    println!("Fig. 3 chain hierarchy with prices:");
    for v in dag.nodes() {
        println!(
            "  {}  c({}) = {}",
            dag.label(v),
            dag.label(v),
            costs.price(v)
        );
    }

    // Example 4: plain greedy ignores prices, cost-sensitive greedy avoids
    // the expensive middle question.
    let ctx = SearchContext::new(&dag, &weights).with_costs(&costs);
    let mut plain = GreedyNaivePolicy::new();
    let mut sensitive = CostSensitivePolicy::new();
    let plain_report = evaluate_exhaustive(&mut plain, &ctx).expect("sound policy");
    let cs_report = evaluate_exhaustive(&mut sensitive, &ctx).expect("sound policy");
    println!("\nExample 4 (paper: simple greedy $6.00, cost-sensitive $4.25):");
    println!(
        "  simple greedy:         expected price ${:.2} (expected questions: {:.2})",
        plain_report.expected_price, plain_report.expected_cost
    );
    println!(
        "  cost-sensitive greedy: expected price ${:.2} (expected questions: {:.2})",
        cs_report.expected_price, cs_report.expected_cost
    );

    // Sweep the expensive node's price: at c = 1 both policies agree; as
    // the middle question gets pricier the cost-sensitive greedy detours.
    println!("\nPrice sweep for the middle question c(c3):");
    println!(
        "  {:>6}  {:>14}  {:>21}",
        "price", "simple greedy", "cost-sensitive greedy"
    );
    for price in [1.0, 2.0, 3.0, 5.0, 8.0, 13.0] {
        let costs = QueryCosts::PerNode(vec![1.0, 1.0, price, 1.0]);
        let ctx = SearchContext::new(&dag, &weights).with_costs(&costs);
        let p = evaluate_exhaustive(&mut plain, &ctx).expect("sound policy");
        let s = evaluate_exhaustive(&mut sensitive, &ctx).expect("sound policy");
        println!(
            "  {price:>6.1}  ${:>13.2}  ${:>20.2}",
            p.expected_price, s.expected_price
        );
    }
    println!("\nThe cost-sensitive policy's bill grows sub-linearly: beyond the");
    println!("break-even it simply routes around the expensive question.");
}
