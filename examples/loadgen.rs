//! Mixed-traffic load generator for the sharded engine's wire protocol.
//!
//! Boots a [`WireServer`] on a loopback port, then drives it from several
//! client threads with the traffic mix a crowd deployment sees: session
//! opens, truthful answers, abandons (sessions dropped without a cancel,
//! left to idle-evict), explicit cancels, and reconnects (a client drops
//! its socket mid-session and a fresh connection continues the same id).
//! Every operation's wall-clock latency is recorded; the run ends with
//! per-op percentiles and the engine's aggregate counters.
//!
//! Correctness is checked on the way through, not assumed: each thread
//! records the full transcript of a sample of its sessions and verifies
//! them bit-identically against the inline [`run_session`] loop on the
//! same plan artifacts — the wire front-end must never change what a
//! session asks or charges.
//!
//! ```text
//! cargo run --release --example loadgen [sessions-per-thread] [threads]
//! ```

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use aigs::core::{run_session, NodeWeights, SearchContext, TargetOracle, TranscriptOracle};
use aigs::core::{SearchOutcome, SessionStep};
use aigs::data::{amazon_like, sample_targets, Scale};
use aigs::graph::{Dag, NodeId};
use aigs::service::wire::{WireClient, WireError, WireFault, WireServer};
use aigs::service::{EngineConfig, PlanId, PlanSpec, PolicyKind, SearchEngine};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Latency samples for one operation type, in nanoseconds.
#[derive(Default)]
struct Lat(Vec<u64>);

impl Lat {
    fn record(&mut self, start: Instant) {
        self.0.push(start.elapsed().as_nanos() as u64);
    }
    fn percentile(&self, sorted: &[u64], p: f64) -> f64 {
        if sorted.is_empty() {
            return f64::NAN;
        }
        let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
        sorted[idx] as f64 / 1_000.0 // µs
    }
    fn report(&self, name: &str) {
        let mut sorted = self.0.clone();
        sorted.sort_unstable();
        println!(
            "  {name:<14} {:>9}  {:>9.1}  {:>9.1}  {:>9.1}  {:>9.1}",
            sorted.len(),
            self.percentile(&sorted, 0.50),
            self.percentile(&sorted, 0.90),
            self.percentile(&sorted, 0.99),
            self.percentile(&sorted, 1.0),
        );
    }
}

#[derive(Default)]
struct Thread {
    lat: HashMap<&'static str, Lat>,
    verified: usize,
    abandoned: usize,
    reconnects: usize,
}

/// One recorded session: what the wire asked and returned.
struct Sample {
    kind: PolicyKind,
    target: NodeId,
    transcript: Vec<(NodeId, bool)>,
    outcome: SearchOutcome,
}

fn drive(
    client: &mut WireClient,
    id: aigs::service::SessionId,
    dag: &Dag,
    target: NodeId,
    lat: &mut HashMap<&'static str, Lat>,
) -> Result<(Vec<(NodeId, bool)>, SearchOutcome), WireError> {
    let mut transcript = Vec::new();
    loop {
        let t = Instant::now();
        let step = client.next_question(id)?;
        lat.entry("next_question").or_default().record(t);
        match step {
            SessionStep::Resolved(_) => {
                let t = Instant::now();
                let out = client.finish(id)?;
                lat.entry("finish").or_default().record(t);
                return Ok((transcript, out));
            }
            SessionStep::Ask(q) => {
                let yes = dag.reaches(q, target);
                transcript.push((q, yes));
                let t = Instant::now();
                client.answer(id, yes)?;
                lat.entry("answer").or_default().record(t);
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn worker(
    addr: std::net::SocketAddr,
    plan: PlanId,
    dag: Arc<Dag>,
    weights: Arc<NodeWeights>,
    sessions: usize,
    thread_seed: u64,
) -> Thread {
    let mut rng = ChaCha8Rng::seed_from_u64(thread_seed);
    let mut out = Thread::default();
    let mut client = WireClient::connect(addr).expect("connect");
    let targets = sample_targets(&weights, sessions, &mut rng);
    let kinds = [
        PolicyKind::TopDown,
        PolicyKind::GreedyDag,
        PolicyKind::Wigs,
        PolicyKind::CostSensitive,
    ];

    for (i, &target) in targets.iter().enumerate() {
        let kind = kinds[rng.gen_range(0..kinds.len())];
        let t = Instant::now();
        let id = match client.open(plan, kind) {
            Ok(id) => {
                out.lat.entry("open").or_default().record(t);
                id
            }
            Err(WireError::Fault(WireFault::AtCapacity { .. })) => continue,
            Err(e) => panic!("open failed: {e}"),
        };

        match i % 10 {
            // 10%: abandon with partial progress — no cancel, no finish;
            // idle eviction is the only thing that reclaims these.
            3 => {
                if let Ok(SessionStep::Ask(q)) = client.next_question(id) {
                    let _ = client.answer(id, dag.reaches(q, target));
                }
                out.abandoned += 1;
            }
            // 10%: explicit cancel mid-flight.
            7 => {
                let _ = client.next_question(id);
                let t = Instant::now();
                client.cancel(id).expect("cancel");
                out.lat.entry("cancel").or_default().record(t);
            }
            // 10%: reconnect — drop the socket mid-session, continue the
            // same id on a fresh connection.
            5 => {
                if let Ok(SessionStep::Ask(q)) = client.next_question(id) {
                    let _ = client.answer(id, dag.reaches(q, target));
                }
                client = WireClient::connect(addr).expect("reconnect");
                out.reconnects += 1;
                let (_, o) = drive(&mut client, id, &dag, target, &mut out.lat).expect("drive");
                assert_eq!(o.target, target, "wrong target after reconnect");
            }
            // 10%: drive to the end AND verify the transcript inline.
            0 => {
                let (transcript, outcome) =
                    drive(&mut client, id, &dag, target, &mut out.lat).expect("drive");
                verify(
                    &dag,
                    &weights,
                    Sample {
                        kind,
                        target,
                        transcript,
                        outcome,
                    },
                );
                out.verified += 1;
            }
            // The rest: plain full sessions.
            _ => {
                let (_, o) = drive(&mut client, id, &dag, target, &mut out.lat).expect("drive");
                assert_eq!(o.target, target, "wrong target");
            }
        }
    }
    let t = Instant::now();
    client.stats().expect("stats");
    out.lat.entry("stats").or_default().record(t);
    out
}

/// The wire transcript must be bit-identical to the inline loop.
fn verify(dag: &Dag, weights: &NodeWeights, sample: Sample) {
    let ctx = SearchContext::new(dag, weights);
    let mut policy = sample.kind.build();
    let mut oracle = TranscriptOracle::new(TargetOracle::new(dag, sample.target));
    let want = run_session(policy.as_mut(), &ctx, &mut oracle, None).expect("inline run");
    assert_eq!(
        sample.transcript, oracle.transcript,
        "{:?}: wire transcript diverged from inline",
        sample.kind
    );
    assert_eq!(sample.outcome.target, want.target);
    assert_eq!(sample.outcome.queries, want.queries);
    assert_eq!(
        sample.outcome.price.to_bits(),
        want.price.to_bits(),
        "{:?}: price diverged",
        sample.kind
    );
}

fn main() {
    let mut args = std::env::args().skip(1);
    let sessions: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(400);
    let threads: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    let dataset = amazon_like(Scale::Small, 11);
    let weights = Arc::new(dataset.empirical_weights());
    let dag = Arc::new(dataset.dag);
    let engine = Arc::new(SearchEngine::new(EngineConfig {
        idle_ticks: Some(50_000),
        ..EngineConfig::default()
    }));
    let plan = engine
        .register_plan(PlanSpec::new(dag.clone(), weights.clone()))
        .unwrap();
    let server = WireServer::bind(Arc::clone(&engine), "127.0.0.1:0", threads).unwrap();
    let addr = server.local_addr();
    println!(
        "loadgen: {} threads x {} sessions against {} ({} shards) on {addr}\n",
        threads,
        sessions,
        dag.stats(),
        engine.stats().shards
    );

    let start = Instant::now();
    let results: Vec<Thread> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let (dag, weights) = (dag.clone(), weights.clone());
                scope.spawn(move || worker(addr, plan, dag, weights, sessions, 0xC0FFEE + t as u64))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = start.elapsed();

    let mut merged: HashMap<&'static str, Lat> = HashMap::new();
    let (mut verified, mut abandoned, mut reconnects) = (0, 0, 0);
    for t in results {
        for (op, lat) in t.lat {
            merged.entry(op).or_default().0.extend(lat.0);
        }
        verified += t.verified;
        abandoned += t.abandoned;
        reconnects += t.reconnects;
    }
    let total_ops: usize = merged.values().map(|l| l.0.len()).sum();
    println!(
        "  {:<14} {:>9}  {:>9}  {:>9}  {:>9}  {:>9}",
        "op", "count", "p50 µs", "p90 µs", "p99 µs", "max µs"
    );
    for op in [
        "open",
        "next_question",
        "answer",
        "finish",
        "cancel",
        "stats",
    ] {
        if let Some(lat) = merged.get(op) {
            lat.report(op);
        }
    }
    // The same operations as seen from inside the engine: the telemetry
    // histograms the server exposes over `metrics` / `GET /metrics`.
    // Client-side numbers above include the TCP round-trip; the gap
    // between the two tables is the wire's cost. Quantiles come from
    // log2 buckets, so they are upper bounds with ≤2x resolution.
    let snap = engine.telemetry();
    if snap.enabled {
        use aigs::service::telemetry::{Op, Tier};
        println!(
            "\n  {:<14} {:>9}  {:>9}  {:>9}  {:>9}   server-side (telemetry)",
            "op", "count", "p50 µs", "p90 µs", "p99 µs"
        );
        for op in [Op::Open, Op::Next, Op::Answer, Op::Finish, Op::Cancel] {
            let mut h = snap.op_tier(op, Tier::Live).clone();
            for tier in [Tier::Compiled, Tier::Fallback] {
                h.merge(snap.op_tier(op, tier));
            }
            if h.count() == 0 {
                continue;
            }
            println!(
                "  {:<14} {:>9}  {:>9.1}  {:>9.1}  {:>9.1}",
                op.name(),
                h.count(),
                h.quantile(0.50) as f64 / 1_000.0,
                h.quantile(0.90) as f64 / 1_000.0,
                h.quantile(0.99) as f64 / 1_000.0,
            );
        }
        let slow = engine.drain_slow_ops();
        if !slow.is_empty() {
            let worst = slow.iter().map(|s| s.duration_ns).max().unwrap_or(0);
            println!(
                "  slow-op journal: {} entries over threshold (worst {:.1} µs)",
                slow.len(),
                worst as f64 / 1_000.0
            );
        }
    }

    let stats = engine.stats();
    println!(
        "\n  {total_ops} ops in {:.2?} ({:.0} ops/s); {verified} transcripts verified \
         against the inline loop, {abandoned} abandoned, {reconnects} reconnects",
        wall,
        total_ops as f64 / wall.as_secs_f64()
    );
    println!(
        "  engine: opened {} finished {} cancelled {} evicted {} live {} (peak {}) \
         steps {} pool hits {}",
        stats.opened,
        stats.finished,
        stats.cancelled,
        stats.evicted,
        stats.live,
        stats.peak_live,
        stats.steps,
        stats.pool_hits
    );
    server.shutdown();
}
