//! Serving suspended crowd searches: the deployment the paper motivates.
//!
//! `run_session` assumes the oracle answers inline; a real crowd worker
//! answers minutes later. This example drives the `aigs-service` engine the
//! way a categorization backend would: hundreds of product-labelling
//! sessions held open at once, questions shipped to (simulated) workers,
//! answers arriving interleaved and out of order. Because control is
//! inverted, noise handling moves to the client side where it belongs:
//! each question is put to several independent workers and the majority
//! answer is fed back — aggregation `MajorityVoteOracle` could never
//! perform under inline control once answers stopped being synchronous.
//! Workers who walk away leave suspended sessions behind; idle eviction
//! reclaims them instead of leaking slots.
//!
//! ```text
//! cargo run --release --example crowd_service
//! ```

use std::sync::Arc;

use aigs::core::NodeWeights;
use aigs::core::SessionStep;
use aigs::data::{amazon_like, sample_targets, Scale};
use aigs::graph::{Dag, NodeId};
use aigs::service::{EngineConfig, PlanId, PlanSpec, PolicyKind, SearchEngine, SessionId};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const SESSIONS: usize = 1_500;
const ABANDONED: usize = 60;
const NOISE: f64 = 0.15;

struct WaveReport {
    finished: u64,
    correct: usize,
    questions: u64,
    votes_billed: u64,
    rounds: usize,
    evicted: u64,
}

/// Serves one wave of `SESSIONS` labelling searches with `votes` noisy
/// workers answering each question by majority. Waves share one registered
/// plan, so later waves reuse the earlier waves' warm pooled policies.
fn serve_wave(
    dag: &Arc<Dag>,
    weights: &NodeWeights,
    engine: &SearchEngine,
    plan: PlanId,
    votes: u32,
    seed: u64,
) -> WaveReport {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let targets = sample_targets(weights, SESSIONS, &mut rng);
    let mut inbox: Vec<(SessionId, NodeId)> = targets
        .iter()
        .map(|&z| {
            let s = engine.open_session(plan, PolicyKind::auto(dag)).unwrap();
            (s.id(), z)
        })
        .collect();

    let evicted_before = engine.stats().evicted;
    let finished_before = engine.stats().finished;
    let mut correct = 0usize;
    let mut questions = 0u64;
    let mut votes_billed = 0u64;
    let mut rounds = 0usize;
    while !inbox.is_empty() {
        rounds += 1;
        // Answers arrive in arbitrary interleaved order, one per live
        // session per round; abandoned workers fetch their first question
        // and are never heard from again.
        inbox.shuffle(&mut rng);
        let mut still = Vec::with_capacity(inbox.len());
        for (i, &(id, z)) in inbox.iter().enumerate() {
            match engine.next_question(id).unwrap() {
                SessionStep::Ask(q) => {
                    if rounds == 1 && i < ABANDONED {
                        continue; // walked away: question out, answer never back
                    }
                    let truth = dag.reaches(q, z);
                    let mut yes = 0u32;
                    for _ in 0..votes {
                        let vote = if rng.gen::<f64>() < NOISE {
                            !truth
                        } else {
                            truth
                        };
                        yes += u32::from(vote);
                    }
                    votes_billed += u64::from(votes);
                    questions += 1;
                    engine.answer(id, yes * 2 > votes).unwrap();
                    still.push((id, z));
                }
                SessionStep::Resolved(_) => {
                    let out = engine.finish(id).unwrap();
                    if out.target == z {
                        correct += 1;
                    }
                }
            }
        }
        inbox = still;
    }
    // The wave is drained; reclaim what the deserters left behind.
    engine.sweep_idle();
    let stats = engine.stats();
    WaveReport {
        finished: stats.finished - finished_before,
        correct,
        questions,
        votes_billed,
        rounds,
        evicted: stats.evicted - evicted_before,
    }
}

fn main() {
    let dataset = amazon_like(Scale::Small, 123);
    let dag = Arc::new(dataset.dag.clone());
    let weights = Arc::new(dataset.empirical_weights());
    println!("Amazon-like taxonomy: {}", dag.stats());
    println!(
        "{SESSIONS} concurrent sessions per wave, {ABANDONED} abandoned mid-search, \
         {:.0}% worker noise\n",
        NOISE * 100.0
    );

    let engine = SearchEngine::new(EngineConfig {
        max_sessions: 2 * SESSIONS,
        // Each engine operation is one logical tick; a session untouched
        // while the rest of the wave drains is long gone.
        idle_ticks: Some(10_000),
        ..EngineConfig::default()
    });
    let plan = engine
        .register_plan(PlanSpec::new(dag.clone(), weights.clone()))
        .unwrap();

    println!(
        "  {:>6}  {:>9}  {:>9}  {:>10}  {:>12}  {:>8}",
        "votes", "finished", "accuracy", "questions", "worker bill", "evicted"
    );
    for votes in [1u32, 3, 5] {
        let r = serve_wave(
            &dag,
            &weights,
            &engine,
            plan,
            votes,
            1000 + u64::from(votes),
        );
        println!(
            "  {votes:>6}  {:>9}  {:>8.1}%  {:>10}  {:>12}  {:>8}",
            r.finished,
            100.0 * r.correct as f64 / r.finished.max(1) as f64,
            r.questions,
            r.votes_billed,
            r.evicted,
        );
        assert_eq!(r.finished, (SESSIONS - ABANDONED) as u64);
        assert_eq!(r.evicted, ABANDONED as u64);
        let _ = r.rounds;
    }

    let stats = engine.stats();
    println!(
        "\nengine totals: {} opened, {} finished, {} evicted, {} steps, \
         {} pool hits, live at exit: {}",
        stats.opened, stats.finished, stats.evicted, stats.steps, stats.pool_hits, stats.live
    );
    println!(
        "Majority voting buys identification accuracy back at a linear bill\n\
         increase — and the engine holds every undecided search suspended\n\
         (peak {} live) while the votes trickle in.",
        stats.peak_live
    );
}
