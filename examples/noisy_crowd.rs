//! Noisy workers (the paper's future-work section): what happens when the
//! crowd answers incorrectly, and how majority voting restores accuracy.
//!
//! Runs the greedy policy against oracles with increasing error rates,
//! without and with 5-vote majority aggregation, reporting identification
//! accuracy and the (real, per-vote) question bill.
//!
//! ```text
//! cargo run --release --example noisy_crowd
//! ```

use aigs::core::policy::GreedyTreePolicy;
use aigs::core::{
    run_session, MajorityVoteOracle, NoisyOracle, Oracle, SearchContext, TargetOracle,
};
use aigs::data::{amazon_like, sample_targets, Scale};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let dataset = amazon_like(Scale::Small, 123);
    let weights = dataset.empirical_weights();
    let ctx = SearchContext::new(&dataset.dag, &weights);
    println!("Amazon-like taxonomy: {}\n", dataset.dag.stats());

    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let targets = sample_targets(&weights, 400, &mut rng);
    let mut policy = GreedyTreePolicy::new();

    println!(
        "  {:>5}  {:>16}  {:>16}  {:>18}",
        "noise", "plain accuracy", "5-vote accuracy", "5-vote avg queries"
    );
    for (i, noise) in [0.0, 0.05, 0.10, 0.20].into_iter().enumerate() {
        let mut plain_correct = 0usize;
        let mut vote_correct = 0usize;
        let mut vote_queries = 0u64;
        for (j, &z) in targets.iter().enumerate() {
            let seed = (i * targets.len() + j) as u64;
            // Plain noisy oracle: errors corrupt the search irrecoverably.
            let noisy = NoisyOracle::new(
                TargetOracle::new(&dataset.dag, z),
                noise,
                ChaCha8Rng::seed_from_u64(seed),
            );
            let mut noisy = noisy;
            if let Ok(out) = run_session(&mut policy, &ctx, &mut noisy, Some(4_000)) {
                if out.target == z {
                    plain_correct += 1;
                }
            }
            // Majority of 5 votes per question.
            let mut voted = MajorityVoteOracle::new(
                NoisyOracle::new(
                    TargetOracle::new(&dataset.dag, z),
                    noise,
                    ChaCha8Rng::seed_from_u64(seed ^ 0xBEEF),
                ),
                5,
            );
            if let Ok(out) = run_session(&mut policy, &ctx, &mut voted, Some(4_000)) {
                if out.target == z {
                    vote_correct += 1;
                }
            }
            vote_queries += voted.queries_asked() as u64;
        }
        let n = targets.len() as f64;
        println!(
            "  {noise:>5.2}  {:>15.1}%  {:>15.1}%  {:>18.1}",
            100.0 * plain_correct as f64 / n,
            100.0 * vote_correct as f64 / n,
            vote_queries as f64 / n
        );
    }

    println!("\nEven 5% noise wrecks the un-aggregated search (one wrong answer");
    println!("prunes the true target forever); majority voting buys accuracy");
    println!("back at 5x the question bill — the trade-off the paper leaves open.");
}
