//! Product categorisation at marketplace scale (the paper's Amazon
//! scenario): a batch of objects must be filed into a 10-level product
//! taxonomy by crowd workers, and every question costs money.
//!
//! Compares the full policy roster on the empirical object distribution —
//! a miniature Table III — and prices the batch.
//!
//! ```text
//! cargo run --release --example product_categorization
//! ```

use aigs::core::{evaluate_roster, paper_roster};
use aigs::data::{amazon_like, Scale};

fn main() {
    let dataset = amazon_like(Scale::Small, 2026);
    let stats = dataset.dag.stats();
    println!("Amazon-like product taxonomy: {stats}");
    println!(
        "Labelled objects: {} across {} categories\n",
        dataset.object_total(),
        dataset.dag.node_count()
    );

    let weights = dataset.empirical_weights();
    let mut roster = paper_roster(dataset.dag.is_tree());
    let rows = evaluate_roster(&mut roster, &dataset.dag, &weights).expect("sound policies");

    println!("Expected crowd questions per object (lower is cheaper):");
    let mut baseline = None;
    for (name, report) in &rows {
        let note = match baseline {
            None => {
                baseline = Some(report.expected_cost);
                String::new()
            }
            Some(b) => format!(
                "  ({:.1}% saved vs TopDown)",
                100.0 * (1.0 - report.expected_cost / b)
            ),
        };
        println!(
            "  {name:<12} expected {:>6.2}   worst case {:>4}{note}",
            report.expected_cost, report.max_cost
        );
    }

    // Price a concrete labelling campaign at $0.05 per question.
    let per_question = 0.05;
    let batch = 100_000.0;
    println!("\nCampaign cost for labelling 100k products at $0.05/question:");
    for (name, report) in &rows {
        println!(
            "  {name:<12} ${:>10.0}",
            report.expected_cost * batch * per_question
        );
    }

    let greedy = rows.last().expect("roster non-empty");
    let wigs = rows
        .iter()
        .find(|(n, _)| n == "wigs")
        .expect("wigs in roster");
    println!(
        "\nThe average-case greedy saves {:.1}% of the crowdsourcing bill over WIGS.",
        100.0 * (1.0 - greedy.1.expected_cost / wigs.1.expected_cost)
    );
}
