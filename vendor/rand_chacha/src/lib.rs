//! Offline shim for `rand_chacha`: a faithful ChaCha8 keystream generator
//! behind the vendored [`rand`] traits. Deterministic across platforms and
//! statistically strong; the exact byte stream may differ from the registry
//! crate, which no test in this workspace depends on.

use rand::{RngCore, SeedableRng};

/// A ChaCha stream cipher RNG with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words (seed), little-endian.
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word in `block`.
    word_idx: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&Self::CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..4 {
            // One double round: column round + diagonal round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = state;
        self.word_idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.word_idx >= 16 {
            self.refill();
        }
        let w = self.block[self.word_idx];
        self.word_idx += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            word_idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_streams() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let mut c = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn keystream_looks_uniform() {
        let mut r = ChaCha8Rng::seed_from_u64(99);
        let trials = 10_000;
        let mean: f64 = (0..trials).map(|_| r.gen::<f64>()).sum::<f64>() / trials as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        let ones: u32 = (0..trials).map(|_| (r.next_u64() & 1) as u32).sum();
        let rate = ones as f64 / trials as f64;
        assert!((rate - 0.5).abs() < 0.02, "bit rate {rate}");
    }

    #[test]
    fn blocks_advance() {
        let mut r = ChaCha8Rng::seed_from_u64(5);
        let first: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        assert_ne!(first, second);
    }
}
