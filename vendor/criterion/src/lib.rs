//! Offline shim for `criterion`: same macro + builder surface the workspace
//! benches use (`criterion_group!`, `criterion_main!`, `Criterion`,
//! `BenchmarkId`, groups with `sample_size`/`bench_function`, `Bencher::iter`)
//! backed by a simple median-of-samples wall-clock harness.
//!
//! Each sample runs the closure a batch of iterations and divides; the
//! reported figure is the median per-iteration time over `sample_size`
//! samples. Set `CRITERION_JSON=<path>` to additionally write all results of
//! the process as a JSON array — the workspace uses that to commit baseline
//! files like `BENCH_hotpath.json`.

use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One finished measurement, collected for the optional JSON dump.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/function` or bare function id.
    pub id: String,
    /// Median per-iteration time in nanoseconds.
    pub median_ns: f64,
    /// Minimum per-iteration time in nanoseconds.
    pub min_ns: f64,
    /// Maximum per-iteration time in nanoseconds.
    pub max_ns: f64,
    /// Number of samples taken.
    pub samples: usize,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Identifier combining a function name and a parameter, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Id from a parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Things accepted as a benchmark id (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to the benchmark closure; `iter` runs and times the workload.
pub struct Bencher<'a> {
    samples: Vec<f64>,
    sample_count: usize,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl Bencher<'_> {
    /// Times `routine`, taking `sample_count` samples of an adaptively sized
    /// batch each.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up and size the batch so one sample lasts ≥ ~1ms.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= (1 << 20) {
                break;
            }
            batch *= 2;
        }
        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples
                .push(elapsed.as_secs_f64() * 1e9 / batch as f64);
        }
    }
}

fn record(id: String, samples: &[f64]) {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = if sorted.is_empty() {
        0.0
    } else {
        sorted[sorted.len() / 2]
    };
    let min = sorted.first().copied().unwrap_or(0.0);
    let max = sorted.last().copied().unwrap_or(0.0);
    println!("{id:<56} median {median:>12.1} ns/iter (min {min:.1}, max {max:.1})");
    RESULTS.lock().unwrap().push(BenchResult {
        id,
        median_ns: median,
        min_ns: min,
        max_ns: max,
        samples: sorted.len(),
    });
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timing samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_count: self.sample_size,
            _marker: std::marker::PhantomData,
        };
        f(&mut b);
        record(format!("{}/{}", self.name, id.into_id()), &b.samples);
        self
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_count: self.sample_size,
            _marker: std::marker::PhantomData,
        };
        f(&mut b, input);
        record(format!("{}/{}", self.name, id.into_id()), &b.samples);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_count: self.default_sample_size,
            _marker: std::marker::PhantomData,
        };
        f(&mut b);
        record(id.into_id(), &b.samples);
        self
    }
}

/// Records a non-time scalar (bytes, node counts) into the same result
/// stream as the timing rows, so deterministic gauges can be committed to
/// the baseline JSON and regression-checked alongside latencies. Shim
/// extension — upstream criterion has no equivalent; benches using it are
/// tied to the offline harness. The value lands in `median_ns` (the field
/// every consumer reads) with `samples: 1` marking it as a gauge.
pub fn record_gauge(id: impl Into<String>, value: f64) {
    let id = id.into();
    println!("{id:<56} gauge  {value:>12.1}");
    RESULTS.lock().unwrap().push(BenchResult {
        id,
        median_ns: value,
        min_ns: value,
        max_ns: value,
        samples: 1,
    });
}

/// Writes every recorded result as JSON to `$CRITERION_JSON`, when set.
/// Called automatically by [`criterion_main!`].
pub fn flush_json() {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    let results = RESULTS.lock().unwrap();
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "  {{\"id\": \"{}\", \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"samples\": {}}}{comma}",
            r.id.replace('"', "'"),
            r.median_ns,
            r.min_ns,
            r.max_ns,
            r.samples
        );
    }
    out.push_str("]\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("criterion shim: failed to write {path}: {e}");
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with `--test`; skip measuring.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
            $crate::flush_json();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
        let results = RESULTS.lock().unwrap();
        let r = results
            .iter()
            .find(|r| r.id == "shim/noop_sum")
            .expect("recorded");
        assert!(r.median_ns >= 0.0);
        assert_eq!(r.samples, 3);
    }

    #[test]
    fn benchmark_id_formatting() {
        assert_eq!(BenchmarkId::new("f", 32).into_id(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").into_id(), "x");
        assert_eq!("plain".into_id(), "plain");
    }
}
