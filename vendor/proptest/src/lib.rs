//! Offline shim for `proptest`: the `proptest!` macro, range/tuple/`vec`
//! strategies and `prop_assert*` macros, enough for this workspace's
//! property tests. Cases are generated from a seeded ChaCha8 stream — runs
//! are deterministic per test (seed = FNV hash of the test name), and a
//! failing case reports its index and sampled inputs via `Debug`.
//!
//! Not implemented (not used here): shrinking, `any::<T>()`, `prop_oneof`,
//! regex string strategies, persistence files.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt;
use std::ops::Range;

/// Deterministic RNG handed to strategies.
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    /// RNG for `test_name`, deterministic across runs.
    pub fn for_test(test_name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(ChaCha8Rng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A failed property within a test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Run configuration (`proptest::test_runner::Config` subset).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_strategy_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
impl_strategy_tuple!(A: 0);
impl_strategy_tuple!(A: 0, B: 1);
impl_strategy_tuple!(A: 0, B: 1, C: 2);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3);

/// Boolean strategies (`proptest::bool`).
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy yielding fair booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// A fair boolean.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.gen::<bool>()
        }
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vector of values from `element` with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything the `proptest!` macro and its callers need.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };

    /// Module alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Declares property tests, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let dump = format!(
                    concat!($(concat!(stringify!($arg), " = {:?}, ")),+),
                    $(&$arg),+
                );
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                })();
                if let Err(e) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{} with inputs: {}\n{}",
                        stringify!($name), case + 1, cfg.cases, dump, e
                    );
                }
            }
        }
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(n in 3usize..10, x in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&n));
            prop_assert!((0.0..1.0).contains(&x), "x out of range: {}", x);
        }

        #[test]
        fn vec_strategy_lengths(ops in prop::collection::vec((0u8..6, prop::bool::ANY), 1..12)) {
            prop_assert!(!ops.is_empty() && ops.len() < 12);
            for (op, _flag) in ops {
                prop_assert!(op < 6);
            }
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_report_case_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(2))]
            #[allow(unused)]
            fn always_fails(n in 0usize..5) {
                prop_assert_eq!(n, 999);
            }
        }
        always_fails();
    }
}
