//! Offline shim implementing the subset of the `rand` 0.8 API this
//! workspace uses. The build environment has no crates.io access, so the
//! workspace vendors a small, deterministic stand-in: the trait surface
//! (`Rng`, `RngCore`, `SeedableRng`, `seq::SliceRandom`) matches the real
//! crate closely enough that swapping the registry dependency back in is a
//! one-line Cargo change.

use std::ops::Range;

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (high half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over the domain,
    /// `bool` fair).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open).
    fn gen_range<T, R2>(&mut self, range: R2) -> T
    where
        Self: Sized,
        R2: SampleRange<T>,
    {
        range.sample_one(self)
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the standard distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits, exactly the real crate's conversion.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from `rng`.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased sampling of `[0, bound)` via Lemire-style rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0, "cannot sample an empty range");
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(uniform_below(rng, span) as i64) as $t
            }
        }
    )*};
}
impl_sample_range_signed!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Seedable deterministic generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64 (the same expansion
    /// the real `rand_core` uses, so seeded streams are reproducible).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod seq {
    //! Slice sampling helpers (`rand::seq` subset).

    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` on empty slices.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[super::uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Counter(42);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = Counter(7);
        for _ in 0..1000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&y));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut Counter(3));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
